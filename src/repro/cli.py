"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``
    Price one iteration of a nested configuration (from a WRF-style
    namelist or a built-in paper configuration) under both strategies.
``plan``
    Print the parallel-siblings execution plan for a configuration.
``profile``
    Step-time breakdown of a single domain on a rank count.
``experiment``
    Run one of the paper's table/figure drivers and print its output.
``verify``
    Differential verification: run the invariant oracles over a fuzzed
    scenario budget and/or diff the golden table snapshots.
``trace``
    Trace one seeded scenario end to end: JSONL events, a Chrome
    trace-event file, and a per-phase profile report reconciled against
    the simulated iteration reports.
``serve``
    Run the resident HTTP planning service (``POST /recommend``,
    ``/simulate``, ``/verify``; ``GET /healthz``, ``/metrics``) with
    warm-started shared caches. See ``docs/service.md``.
``ensemble``
    Drive N concurrent steered scenarios (kill/spawn/branch mid-flight)
    with cross-member pricing dedup and a live ASCII/JSON dashboard.
    See ``docs/ensemble.md``.

Every command that runs the simulator also accepts ``--trace PATH`` to
stream structured trace events (JSONL + Chrome export) while it runs.
``--jobs`` is validated centrally: any value below 1 is a
:class:`~repro.errors.ConfigurationError` on every subcommand.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.mapping.base import Mapping
from repro.core.mapping.multilevel import MultiLevelMapping
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.mapping.partition_map import PartitionMapping
from repro.core.mapping.txyz import TxyzMapping
from repro.core.scheduler.strategies import ParallelSiblingsStrategy, SequentialStrategy
from repro.errors import ConfigurationError, ReproError
from repro.iosim.model import IoModel
from repro.perfsim.profiling import profile_step
from repro.perfsim.simulate import simulate_iteration
from repro.perfsim.timeline import build_timeline, render_gantt
from repro.runtime.decomposition import choose_process_grid
from repro.runtime.process_grid import ProcessGrid
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P, Machine
from repro.wrf.grid import DomainSpec
from repro.wrf.namelist import domains_from_namelist, parse_namelist

__all__ = ["main"]

_MACHINES = {"bgl": BLUE_GENE_L, "bgp": BLUE_GENE_P}
_MAPPINGS = {
    "oblivious": ObliviousMapping,
    "txyz": TxyzMapping,
    "partition": PartitionMapping,
    "multilevel": MultiLevelMapping,
}

_EXPERIMENTS = {
    "fig2": ("fig2_scaling", {}),
    "fig3a": ("fig3a_triangulation", {}),
    "fig3b": ("fig3b_partition", {}),
    "fig4": ("fig4_split_direction", {}),
    "fig5": ("fig5_fig6_mapping_example", {}),
    "fig8": ("fig8_improvement_with_io", {"num_configs": 6}),
    "fig10": ("fig10_large_siblings", {}),
    "fig13": ("fig13_fig14_io_scaling", {"num_configs": 3}),
    "fig15": ("fig15_speedup", {}),
    "table1": ("table1_wait_improvement", {"num_configs": 6}),
    "table2": ("table2_fig9_siblings", {}),
    "table3": ("table3_nest_size_effect", {}),
    "table4": ("table4_fig11_mappings_bgl", {}),
    "table5": ("table5_fig12_mappings_bgp", {}),
    "sec46": ("sec46_allocation_quality", {}),
    "prediction": ("prediction_error_study", {"num_tests": 30}),
    "siblings": ("sibling_count_effect", {"configs_per_count": 6}),
}


def _load_domains(args) -> tuple[DomainSpec, List[DomainSpec]]:
    if args.namelist:
        with open(args.namelist) as fh:
            specs = domains_from_namelist(parse_namelist(fh.read()))
    else:
        from repro.workloads.paper_configs import (
            fig2_domains,
            fig10_domains,
            fig15_domains,
            table2_domains,
        )

        builtins = {
            "fig2": fig2_domains,
            "fig10": fig10_domains,
            "fig15": fig15_domains,
            "table2": table2_domains,
        }
        config = builtins[args.config]()
        specs = [config.parent, *config.siblings]
    parent, *nests = specs
    if not nests:
        raise ReproError("configuration has no nests")
    return parent, nests


def _grid_for(ranks: int) -> ProcessGrid:
    px, py = choose_process_grid(ranks)
    return ProcessGrid(px, py)


def _add_jobs_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for the sweep (default: 1 = inline; "
             "results are identical for every value)",
    )


def _validate_jobs(args) -> None:
    """Central ``--jobs`` check for every subcommand that accepts it.

    Zero or negative worker counts used to slip through to whichever
    layer consumed them (a raw ``ValueError`` traceback from the pool,
    or a silent inline fallback); now they fail uniformly with a clear
    :class:`ConfigurationError` before any work starts.
    """
    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 1:
        raise ConfigurationError(
            f"--jobs must be >= 1, got {jobs} (1 means inline execution)"
        )


def _add_trace_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="PATH", dest="trace",
        help="stream trace events to PATH as JSONL (a Chrome trace-event "
             "export is written alongside)",
    )


def _add_domain_source(p: argparse.ArgumentParser) -> None:
    src = p.add_mutually_exclusive_group()
    src.add_argument("--namelist", help="WRF-style namelist.input file")
    src.add_argument(
        "--config", default="table2",
        choices=["fig2", "fig10", "fig15", "table2"],
        help="built-in paper configuration (default: table2)",
    )


def _cmd_simulate(args) -> int:
    parent, nests = _load_domains(args)
    machine = _MACHINES[args.machine]
    grid = _grid_for(args.ranks)
    io = None if args.io == "none" else IoModel(args.io)
    mapping: Optional[Mapping] = (
        None if args.mapping == "oblivious" else _MAPPINGS[args.mapping]()
    )

    seq_plan = SequentialStrategy().plan(grid, parent, nests)
    par_plan = ParallelSiblingsStrategy().plan(
        grid, parent, nests, ratios=[n.points for n in nests]
    )
    seq = simulate_iteration(seq_plan, machine, io_model=io)
    par = simulate_iteration(par_plan, machine, mapping=mapping, io_model=io)

    print(f"machine {machine.name}, {args.ranks} ranks "
          f"({grid.px}x{grid.py} grid), mapping {args.mapping}")
    print(f"  sequential : {seq.total_time:.3f} s/iteration "
          f"(integration {seq.integration_time:.3f}, I/O {seq.io_time:.3f})")
    print(f"  parallel   : {par.total_time:.3f} s/iteration "
          f"(integration {par.integration_time:.3f}, I/O {par.io_time:.3f})")
    gain = 100 * (1 - par.total_time / seq.total_time)
    print(f"  improvement: {gain:.1f}%   "
          f"MPI_Wait {seq.mpi_wait:.3f} -> {par.mpi_wait:.3f} s/rank "
          f"({100 * (1 - par.mpi_wait / seq.mpi_wait):.1f}% less)")
    if args.timeline:
        print()
        print("sequential iteration:")
        print(render_gantt(build_timeline(seq)))
        print()
        print("parallel iteration:")
        print(render_gantt(build_timeline(par)))
    return 0


def _cmd_plan(args) -> int:
    parent, nests = _load_domains(args)
    grid = _grid_for(args.ranks)
    plan = ParallelSiblingsStrategy().plan(
        grid, parent, nests, ratios=[n.points for n in nests]
    )
    print(plan.describe())
    return 0


def _cmd_profile(args) -> int:
    machine = _MACHINES[args.machine]
    spec = DomainSpec("query", nx=args.nx, ny=args.ny, dx_km=8.0,
                      parent="cli", parent_start=(0, 0), level=1)
    grid = _grid_for(args.ranks)
    sc = profile_step(spec, grid, machine)
    print(f"{args.nx}x{args.ny} on {args.ranks} {machine.name} ranks "
          f"({grid.px}x{grid.py} grid):")
    print(f"  compute    : {sc.compute.time * 1e3:8.2f} ms "
          f"(max tile {sc.compute.max_tile[0]}x{sc.compute.max_tile[1]})")
    print(f"  comm       : {sc.comm.time * 1e3:8.2f} ms "
          f"(avg hops {sc.comm.average_hops:.2f})")
    print(f"  fixed      : {(sc.overhead + sc.skew + sc.collectives) * 1e3:8.2f} ms")
    print(f"  total step : {sc.total * 1e3:8.2f} ms   "
          f"MPI_Wait {sc.wait * 1e3:.2f} ms")
    return 0


def _cmd_experiment(args) -> int:
    import inspect

    import repro.analysis.experiments as exp

    func_name, kwargs = _EXPERIMENTS[args.name]
    func = getattr(exp, func_name)
    if args.jobs != 1:
        if "jobs" in inspect.signature(func).parameters:
            kwargs = {**kwargs, "jobs": args.jobs}
        else:
            print(f"note: {args.name} does not sweep; --jobs ignored",
                  file=sys.stderr)
    result = func(**kwargs)
    print(result.render())
    return 0


def _cmd_recommend(args) -> int:
    from repro.analysis.planner import recommend
    from repro.workloads.regions import Configuration

    parent, nests = _load_domains(args)
    config = Configuration(args.config or "namelist", parent, tuple(nests))
    io = None if args.io == "none" else IoModel(args.io)
    plan = recommend(
        config,
        _MACHINES[args.machine],
        max_ranks=args.max_ranks,
        min_ranks=args.min_ranks,
        efficiency_floor=args.efficiency_floor,
        io_model=io,
        jobs=args.jobs,
    )
    print(plan.render())
    return 0


def _cmd_report(args) -> int:
    import repro.analysis.experiments as exp

    names = sorted(_EXPERIMENTS) if "all" in args.names else args.names
    sections: List[str] = []
    for name in names:
        func_name, kwargs = _EXPERIMENTS[name]
        result = getattr(exp, func_name)(**kwargs)
        sections.append(f"## {name}\n\n```\n{result.render()}\n```")
    text = "# Reproduction report\n\n" + "\n\n".join(sections) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output} ({len(names)} experiments)")
    else:
        print(text)
    return 0


def _cmd_verify(args) -> int:
    from pathlib import Path

    from repro.verify import all_oracles, check_goldens, fuzz, write_goldens

    registered = sorted(all_oracles())
    if args.list_oracles:
        for name in registered:
            doc = (all_oracles()[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:22s} {doc}")
        return 0

    golden_dir = Path(args.golden_dir) if args.golden_dir else None
    if args.update_goldens:
        for path in write_goldens(golden_dir):
            print(f"wrote {path}")
        return 0

    exit_code = 0
    if not args.skip_fuzz:
        for name in args.oracle or []:
            if name not in registered:
                print(f"error: unknown oracle {name!r}; registered: "
                      f"{', '.join(registered)}", file=sys.stderr)
                return 2
        report = fuzz(
            args.budget,
            seed=args.seed,
            oracle_names=args.oracle or None,
            jobs=args.jobs,
        )
        print(report.render())
        if not report.ok:
            exit_code = 1

    if args.goldens:
        problems = check_goldens(golden_dir)
        if problems:
            print(f"golden snapshots: {len(problems)} mismatches")
            for p in problems:
                print(f"  {p}")
            exit_code = 1
        else:
            print("golden snapshots: all within tolerance")
    return exit_code


def _cmd_trace(args) -> int:
    import json
    from pathlib import Path

    from repro.obs import TraceSession, build_report, reconcile, registry
    from repro.verify.scenarios import Scenario, random_scenario

    if args.params:
        with open(args.params) as fh:
            scenario = Scenario.from_params(json.load(fh))
    elif args.seed is not None:
        scenario = random_scenario(args.seed)
    else:
        scenario = Scenario()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    with TraceSession(out / "trace.jsonl") as session:
        run = scenario.build()

    report = build_report(session.records, registry().snapshot())
    profile_path = out / "profile.json"
    profile_path.write_text(
        json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
    )
    print(f"scenario: {scenario.params()}")
    print(report.render())
    print(f"trace   : {session.path} ({len(session.records)} records)")
    print(f"chrome  : {session.chrome_path}")
    print(f"profile : {profile_path}")

    problems = reconcile(session.records, [run.seq_report, run.par_report])
    if problems:
        print(f"reconciliation FAILED ({len(problems)} problems):")
        for p in problems:
            print(f"  {p}")
        return 1
    print("per-phase totals reconcile with the iteration reports (<= 1e-9)")
    return 0


def _cmd_serve(args) -> int:
    from repro.service import PlanningServer, ServicePolicy, ServiceState

    if args.cache_ttl is not None and args.cache_ttl <= 0:
        raise ConfigurationError(
            f"--cache-ttl must be > 0 seconds, got {args.cache_ttl}"
        )
    if args.shards < 0:
        raise ConfigurationError(f"--shards must be >= 0, got {args.shards}")
    if args.pool_size < 1:
        raise ConfigurationError(
            f"--pool-size must be >= 1, got {args.pool_size}"
        )
    policy = ServicePolicy(
        plan_ttl_s=args.cache_ttl,
        placement_ttl_s=args.cache_ttl,
        route_ttl_s=args.cache_ttl,
    )
    if args.shards > 0:
        return _serve_sharded(args, policy)
    state = ServiceState(policy)
    server = PlanningServer(state, host=args.host, port=args.port)
    if args.warm:
        summary = state.warm_start()
        print(
            f"warm start: {', '.join(summary['configs'])} on "
            f"{summary['machine']} — {summary['plan_cache_entries']} plans, "
            f"{summary['placement_cache_entries']} placements, "
            f"{summary['route_cache_entries']} routed exchanges resident",
            flush=True,
        )
    # The bench harness and the serve smoke test parse this line for the
    # bound (possibly ephemeral) port; keep its shape stable.
    print(f"listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


def _serve_sharded(args, policy) -> int:
    from repro.service import ShardedPlanningService

    service = ShardedPlanningService(
        args.shards,
        host=args.host,
        port=args.port,
        policy=policy,
        warm=args.warm,
        pool_size=args.pool_size,
    )
    service.start()
    if args.warm:
        print(
            f"warm start: {args.shards} shards preloaded before first "
            f"request",
            flush=True,
        )
    print(
        f"shards: {args.shards} "
        f"({', '.join(service.supervisor.live_shards())})",
        flush=True,
    )
    # Same stable line as the single-process path: harnesses parse it
    # for the bound (possibly ephemeral) port.
    print(f"listening on {service.url}", flush=True)
    try:
        service.wait()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        service.close()
    return 0


def _cmd_ensemble(args) -> int:
    from repro.ensemble import (
        EnsembleDriver,
        EnsemblePolicy,
        default_member_spec,
        parse_event,
        render_dashboard,
        render_json_line,
    )

    if args.members < 1:
        raise ConfigurationError(f"--members must be >= 1, got {args.members}")
    if args.families < 1:
        raise ConfigurationError(f"--families must be >= 1, got {args.families}")
    specs = [
        default_member_spec(
            args.seed + (i % args.families),
            parent_nx=args.parent_nx,
            parent_ny=args.parent_ny,
            nests=args.nests,
            nest_px=args.nest_px,
            refinement=args.refinement,
            retrack_interval=args.retrack_interval,
        )
        for i in range(args.members)
    ]
    policy = EnsemblePolicy(
        machine=args.machine,
        ranks=args.ranks,
        io=None if args.io == "none" else args.io,
        mapping=args.mapping,
        memo=args.memo,
    )
    events = [parse_event(text) for text in args.event]

    def progress(frame):
        if args.json:
            print(render_json_line(frame), flush=True)
        elif args.dashboard:
            print(render_dashboard(frame), flush=True)
            print(flush=True)

    driver = EnsembleDriver(
        specs,
        policy=policy,
        jobs=args.jobs,
        events=events,
        progress=progress if (args.json or args.dashboard) else None,
    )
    result = driver.run(args.ticks)
    if args.json:
        import json as _json

        print(
            _json.dumps(
                {
                    "final": True,
                    "jobs": result.jobs,
                    "member_ticks": result.member_ticks,
                    "members_per_s": result.members_per_s,
                    "dedup_hit_rate": result.dedup_hit_rate,
                    "memo": result.memo.to_json(),
                    "caches": result.caches,
                    "wall_s": result.wall_s,
                    "metrics": result.metrics,
                    "members": [m.to_json() for m in result.members],
                },
                sort_keys=True,
            )
        )
    else:
        metrics = result.metrics
        print(
            f"ensemble: {metrics['ensemble.members.initial']['value']} members "
            f"(+{metrics['ensemble.members.spawned']['value']} spawned, "
            f"+{metrics['ensemble.members.branched']['value']} branched, "
            f"-{metrics['ensemble.members.killed']['value']} killed), "
            f"{result.ticks} ticks, jobs={result.jobs}"
        )
        print(
            f"  {result.member_ticks} member-ticks in {result.wall_s:.2f}s "
            f"({result.members_per_s:,.1f} member-ticks/s)"
        )
        print(
            f"  dedup: {result.memo.hits} hits / {result.memo.misses} misses "
            f"({result.dedup_hit_rate:.1%} hit rate, "
            f"{result.memo.shared_hits} via shared table)"
        )
        print(
            f"  steering: {metrics['ensemble.steer.moves']['value']} moves, "
            f"{metrics['ensemble.steer.replans']['value']} replans, "
            f"sim time {metrics['ensemble.sim_time.total_s']['value']:.3f}s"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Divide-and-conquer scheduling of nested weather simulations "
                    "(Malakar et al., SC 2012 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="price one iteration under both strategies")
    _add_domain_source(p)
    p.add_argument("--ranks", type=int, default=1024)
    p.add_argument("--machine", choices=sorted(_MACHINES), default="bgl")
    p.add_argument("--mapping", choices=sorted(_MAPPINGS), default="oblivious")
    p.add_argument("--io", choices=["none", "pnetcdf", "split"], default="none")
    p.add_argument("--timeline", action="store_true",
                   help="print per-group Gantt charts")
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("plan", help="print the parallel execution plan")
    _add_domain_source(p)
    p.add_argument("--ranks", type=int, default=1024)
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser("profile", help="step-time breakdown of one domain")
    p.add_argument("--nx", type=int, required=True)
    p.add_argument("--ny", type=int, required=True)
    p.add_argument("--ranks", type=int, default=512)
    p.add_argument("--machine", choices=sorted(_MACHINES), default="bgl")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("experiment", help="run a paper table/figure driver")
    p.add_argument("name", choices=sorted(_EXPERIMENTS))
    _add_jobs_flag(p)
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("recommend",
                       help="sweep scales/strategies and recommend a setup")
    _add_domain_source(p)
    p.add_argument("--machine", choices=sorted(_MACHINES), default="bgl")
    p.add_argument("--min-ranks", type=int, default=64, dest="min_ranks")
    p.add_argument("--max-ranks", type=int, default=1024, dest="max_ranks")
    p.add_argument("--efficiency-floor", type=float, default=0.5,
                   dest="efficiency_floor")
    p.add_argument("--io", choices=["none", "pnetcdf", "split"], default="none")
    _add_jobs_flag(p)
    p.set_defaults(func=_cmd_recommend)

    p = sub.add_parser(
        "verify",
        help="run invariant oracles over fuzzed scenarios and check goldens")
    p.add_argument("--budget", type=int, default=200,
                   help="number of fuzzed scenarios (default: 200)")
    p.add_argument("--seed", type=int, default=7,
                   help="master fuzz seed (default: 7)")
    p.add_argument("--oracle", action="append",
                   help="restrict to one oracle (repeatable; default: all)")
    p.add_argument("--list-oracles", action="store_true",
                   help="list registered invariant oracles and exit")
    p.add_argument("--skip-fuzz", action="store_true",
                   help="skip the fuzz phase (e.g. goldens only)")
    p.add_argument("--goldens", action="store_true",
                   help="also diff the golden table snapshots")
    p.add_argument("--update-goldens", action="store_true",
                   help="regenerate golden snapshots and exit")
    p.add_argument("--golden-dir",
                   help="snapshot directory (default: tests/golden)")
    _add_jobs_flag(p)
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "trace",
        help="trace one seeded scenario and write JSONL + Chrome trace + "
             "per-phase profile")
    p.add_argument("--seed", type=int, default=None,
                   help="draw the scenario from this fuzz seed "
                        "(default: the canonical default scenario)")
    p.add_argument("--params", metavar="FILE",
                   help="JSON repro dict (as printed by `repro verify`) "
                        "to trace instead of a seeded draw")
    p.add_argument("--out", default="trace-out",
                   help="output directory (default: trace-out)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "serve",
        help="run the resident HTTP planning service (see docs/service.md)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8023,
                   help="bind port; 0 picks an ephemeral port (default: 8023)")
    p.add_argument("--no-warm", dest="warm", action="store_false",
                   help="skip warm-start preloading of the paper configs")
    p.add_argument("--cache-ttl", type=float, default=None, metavar="SECONDS",
                   dest="cache_ttl",
                   help="TTL for the shared plan/placement/route caches "
                        "(default: entries live until byte-budget eviction)")
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="run N shard processes behind a consistent-hash "
                        "router (0 = single in-process server; default: 0)")
    p.add_argument("--pool-size", type=int, default=8, metavar="K",
                   dest="pool_size",
                   help="router-to-shard keep-alive connections per shard "
                        "(default: 8)")
    p.set_defaults(func=_cmd_serve, warm=True)

    p = sub.add_parser(
        "ensemble",
        help="drive N concurrent steered scenarios with cross-member "
             "work dedup (see docs/ensemble.md)")
    p.add_argument("--members", type=int, default=8, metavar="N",
                   help="initial ensemble size (default: 8)")
    p.add_argument("--families", type=int, default=2, metavar="K",
                   help="distinct seed families among the initial members; "
                        "members of one family share a trajectory until "
                        "events diverge them (default: 2)")
    p.add_argument("--ticks", type=int, default=4, metavar="T",
                   help="outer ticks to advance every member (default: 4)")
    p.add_argument("--seed", type=int, default=7,
                   help="base seed; family f runs under seed+f (default: 7)")
    p.add_argument("--machine", choices=["bgl", "bgp"], default="bgp")
    p.add_argument("--ranks", type=int, default=4096,
                   help="rank count every member is priced at (default: 4096)")
    p.add_argument("--io", choices=["none", "pnetcdf", "split"],
                   default="pnetcdf")
    p.add_argument("--mapping", choices=["oblivious", "txyz"],
                   default="oblivious")
    p.add_argument("--parent-nx", type=int, default=40, dest="parent_nx")
    p.add_argument("--parent-ny", type=int, default=32, dest="parent_ny")
    p.add_argument("--nests", type=int, default=2,
                   help="nests per member (default: 2)")
    p.add_argument("--nest-px", type=int, default=10, dest="nest_px",
                   help="nest size in fine points per side (default: 10)")
    p.add_argument("--refinement", type=int, default=2)
    p.add_argument("--retrack-interval", type=int, default=1,
                   dest="retrack_interval",
                   help="iterations between tracker passes (default: 1)")
    p.add_argument("--event", action="append", default=[],
                   metavar="ACTION:TICK[:ARG]",
                   help="schedule a runtime intervention (kill:T:MEMBER, "
                        "branch:T:MEMBER, spawn:T[:SEED]); repeatable")
    p.add_argument("--no-memo", dest="memo", action="store_false",
                   help="disable cross-member dedup (the benchmark baseline)")
    p.add_argument("--dashboard", action="store_true",
                   help="print a live ASCII dashboard frame per tick")
    p.add_argument("--json", action="store_true",
                   help="print one JSON progress line per tick plus a "
                        "final JSON summary")
    _add_jobs_flag(p)
    p.set_defaults(func=_cmd_ensemble, memo=True)

    p = sub.add_parser("report",
                       help="run experiment drivers and write a markdown report")
    p.add_argument("names", nargs="+",
                   choices=sorted(_EXPERIMENTS) + ["all"],
                   help="experiment names, or 'all'")
    p.add_argument("--output", "-o", help="output file (default: stdout)")
    p.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        _validate_jobs(args)
        trace_path = getattr(args, "trace", None)
        if trace_path:
            from repro.obs import TraceSession

            with TraceSession(trace_path) as session:
                code = args.func(args)
            print(
                f"trace: {session.path} ({len(session.records)} records), "
                f"chrome trace {session.chrome_path}",
                file=sys.stderr,
            )
            return code
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
