"""The topology-oblivious (default XYZT) mapping — Fig 5(b).

Blue Gene's default placement assigns MPI ranks to torus coordinates in
increasing x, then y, then z order, wrapping to the next core of each node
only after all nodes received one rank (the trailing "T" of XYZT). This is
the placement the paper's "topology-oblivious" results use: correct, but
ignorant of the 2-D neighbourhood structure, so virtual-topology rows end
up several torus hops apart.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.mapping.base import Mapping, Placement, SlotCoord, SlotSpace
from repro.runtime.backend import placement_backend
from repro.runtime.process_grid import GridRect, ProcessGrid

__all__ = ["ObliviousMapping"]


class ObliviousMapping(Mapping):
    """Sequential XYZT placement (the Blue Gene default)."""

    name = "oblivious"

    def place(
        self,
        grid: ProcessGrid,
        space: SlotSpace,
        rects: Optional[Sequence[GridRect]] = None,
    ) -> Placement:
        """Rank *r* goes to node ``r % nodes`` (xyz order), core ``r // nodes``.

        *rects* is accepted for interface uniformity and ignored.
        """
        self._check_capacity(grid, space)
        torus = space.torus
        nodes = torus.num_nodes
        rpn = space.ranks_per_node
        if placement_backend() == "vector":
            x_dim, y_dim, _ = torus.dims
            rank = np.arange(grid.size, dtype=np.int64)
            node_idx = rank % nodes
            core = rank // nodes
            slot_arr = np.empty((grid.size, 3), dtype=np.int64)
            slot_arr[:, 0] = node_idx % x_dim
            slot_arr[:, 1] = (node_idx // x_dim) % y_dim
            slot_arr[:, 2] = (node_idx // (x_dim * y_dim)) * rpn + core
            return Placement(space=space, grid=grid, slots=slot_arr, name=self.name)
        slots: list[SlotCoord] = []
        for rank in range(grid.size):
            core = rank // nodes
            node_idx = rank % nodes
            x, y, z = torus.coord_of(node_idx)
            slots.append((x, y, z * rpn + core))
        return Placement(space=space, grid=grid, slots=tuple(slots), name=self.name)
