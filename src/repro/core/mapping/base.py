"""Mapping foundations: slot space, placements, the Mapping interface.

**Slot space.** A machine partition is a torus of nodes with ``rpn`` MPI
ranks per node (1 in CO/SMP mode, 2 in Dual/VN-on-BG/L, 4 in VN-on-BG/P).
We model the rank-placement target as a 3-D box of *slots* with dimensions
``(X, Y, Z * rpn)``: slot ``(x, y, s)`` lives on node ``(x, y, s // rpn)``.
Extending the z axis keeps the target a clean box (so rectangles can be
embedded contiguously) while preserving the property that slots on the
same node are zero hops apart.

**Placement.** The result of a mapping: for every world rank, the slot it
occupies (a bijection onto a subset of slots) and therefore the node
coordinate the network simulator routes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MappingError
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.torus import Torus3D, TorusCoord
from repro.util.validation import check_positive_int

__all__ = ["SlotCoord", "SlotSpace", "Box", "Placement", "Mapping"]

SlotCoord = Tuple[int, int, int]


class SlotSpace:
    """The box of rank slots over a node torus."""

    __slots__ = ("_torus", "_rpn")

    def __init__(self, torus: Torus3D, ranks_per_node: int = 1):
        self._torus = torus
        self._rpn = check_positive_int(ranks_per_node, "ranks_per_node")

    @property
    def torus(self) -> Torus3D:
        """The underlying node torus."""
        return self._torus

    @property
    def ranks_per_node(self) -> int:
        """MPI ranks per node."""
        return self._rpn

    @property
    def dims(self) -> Tuple[int, int, int]:
        """Slot-box dimensions ``(X, Y, Z * rpn)``."""
        x, y, z = self._torus.dims
        return (x, y, z * self._rpn)

    @property
    def num_slots(self) -> int:
        """Total rank capacity."""
        return self._torus.num_nodes * self._rpn

    def node_of(self, slot: SlotCoord) -> TorusCoord:
        """The torus node hosting *slot*."""
        x, y, s = slot
        X, Y, S = self.dims
        if not (0 <= x < X and 0 <= y < Y and 0 <= s < S):
            raise MappingError(f"slot {slot} outside slot box {self.dims}")
        return (x, y, s // self._rpn)

    def slot_index(self, slot: SlotCoord) -> int:
        """Linear slot id (x fastest, then y, then s) for bijection checks."""
        x, y, s = slot
        X, Y, S = self.dims
        if not (0 <= x < X and 0 <= y < Y and 0 <= s < S):
            raise MappingError(f"slot {slot} outside slot box {self.dims}")
        return x + X * (y + Y * s)

    def __repr__(self) -> str:
        X, Y, S = self.dims
        return f"SlotSpace({X}x{Y}x{S}, rpn={self._rpn})"


@dataclass(frozen=True)
class Box:
    """An axis-aligned sub-box of slot space: origin + extents."""

    x0: int
    y0: int
    s0: int
    w: int
    h: int
    d: int

    def __post_init__(self) -> None:
        check_positive_int(self.w, "w")
        check_positive_int(self.h, "h")
        check_positive_int(self.d, "d")
        if min(self.x0, self.y0, self.s0) < 0:
            raise MappingError(f"box origin must be non-negative: {self}")

    @property
    def volume(self) -> int:
        """Number of slots contained."""
        return self.w * self.h * self.d

    @property
    def extents(self) -> Tuple[int, int, int]:
        """``(w, h, d)``."""
        return (self.w, self.h, self.d)

    def slots(self) -> List[SlotCoord]:
        """All slots, x fastest, then y, then s."""
        return [
            (self.x0 + dx, self.y0 + dy, self.s0 + ds)
            for ds in range(self.d)
            for dy in range(self.h)
            for dx in range(self.w)
        ]


@dataclass(frozen=True)
class Placement:
    """A complete rank -> slot assignment.

    Attributes
    ----------
    space:
        The slot space mapped into.
    grid:
        The virtual process grid mapped from.
    slots:
        ``slots[rank]`` is the slot of world rank *rank*.
    name:
        The producing mapping's name (for reports).
    """

    space: SlotSpace
    grid: ProcessGrid
    slots: Tuple[SlotCoord, ...]
    name: str

    def __post_init__(self) -> None:
        if len(self.slots) != self.grid.size:
            raise MappingError(
                f"placement covers {len(self.slots)} ranks, grid has {self.grid.size}"
            )
        seen: Dict[int, int] = {}
        for rank, slot in enumerate(self.slots):
            idx = self.space.slot_index(slot)
            if idx in seen:
                raise MappingError(
                    f"ranks {seen[idx]} and {rank} both mapped to slot {slot}"
                )
            seen[idx] = rank

    def node_of(self, rank: int) -> TorusCoord:
        """Torus node of world rank *rank*."""
        return self.space.node_of(self.slots[rank])

    def nodes(self) -> List[TorusCoord]:
        """Per-rank node coordinates (index = world rank)."""
        return [self.space.node_of(s) for s in self.slots]

    def slot_indices(self) -> List[int]:
        """Linear slot id of every rank, in rank order.

        The placement is a bijection onto a slot subset exactly when
        these ids are pairwise distinct; computed from raw coordinates
        (not ``__post_init__`` state) so verification oracles can
        re-check placements mutated after construction.
        """
        X, Y, S = self.space.dims
        out: List[int] = []
        for x, y, s in self.slots:
            if not (0 <= x < X and 0 <= y < Y and 0 <= s < S):
                raise MappingError(f"slot ({x}, {y}, {s}) outside slot box {self.space.dims}")
            out.append(x + X * (y + Y * s))
        return out

    def hops_between(self, rank_a: int, rank_b: int) -> int:
        """Torus hop distance between two ranks (0 if co-located)."""
        return self.space.torus.distance(self.node_of(rank_a), self.node_of(rank_b))


class Mapping:
    """Base class of all 2D -> 3D mapping heuristics."""

    #: Short identifier used in tables and reports.
    name: str = "abstract"

    def place(
        self,
        grid: ProcessGrid,
        space: SlotSpace,
        rects: Optional[Sequence[GridRect]] = None,
    ) -> Placement:
        """Produce a placement of *grid*'s ranks into *space*.

        *rects* carries the per-sibling processor rectangles for the
        partition-aware mappings; topology-oblivious mappings ignore it.
        """
        raise NotImplementedError

    def _check_capacity(self, grid: ProcessGrid, space: SlotSpace) -> None:
        if grid.size > space.num_slots:
            raise MappingError(
                f"{grid.size} ranks exceed {space.num_slots} slots of {space!r}"
            )
