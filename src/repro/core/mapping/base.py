"""Mapping foundations: slot space, placements, the Mapping interface.

**Slot space.** A machine partition is a torus of nodes with ``rpn`` MPI
ranks per node (1 in CO/SMP mode, 2 in Dual/VN-on-BG/L, 4 in VN-on-BG/P).
We model the rank-placement target as a 3-D box of *slots* with dimensions
``(X, Y, Z * rpn)``: slot ``(x, y, s)`` lives on node ``(x, y, s // rpn)``.
Extending the z axis keeps the target a clean box (so rectangles can be
embedded contiguously) while preserving the property that slots on the
same node are zero hops apart.

**Placement.** The result of a mapping: for every world rank, the slot it
occupies (a bijection onto a subset of slots) and therefore the node
coordinate the network simulator routes from.

A placement is array-backed: mappings may hand the constructor a dense
``(P, 3)`` ``int64`` slot array (what the vectorized heuristics produce),
the bijection check runs vectorized under the default backend
(``REPRO_PLACEMENT=vector``), and :meth:`Placement.nodes_array` exposes
the per-rank node coordinates as an array the network engine consumes
without materialising a Python tuple list per iteration. The scalar
per-rank walk remains as the parity oracle (``REPRO_PLACEMENT=scalar``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MappingError
from repro.runtime.backend import placement_backend
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.torus import Torus3D, TorusCoord
from repro.util.validation import check_positive_int

__all__ = ["SlotCoord", "SlotSpace", "Box", "Placement", "Mapping"]

SlotCoord = Tuple[int, int, int]


class SlotSpace:
    """The box of rank slots over a node torus."""

    __slots__ = ("_torus", "_rpn")

    def __init__(self, torus: Torus3D, ranks_per_node: int = 1):
        self._torus = torus
        self._rpn = check_positive_int(ranks_per_node, "ranks_per_node")

    @property
    def torus(self) -> Torus3D:
        """The underlying node torus."""
        return self._torus

    @property
    def ranks_per_node(self) -> int:
        """MPI ranks per node."""
        return self._rpn

    @property
    def dims(self) -> Tuple[int, int, int]:
        """Slot-box dimensions ``(X, Y, Z * rpn)``."""
        x, y, z = self._torus.dims
        return (x, y, z * self._rpn)

    @property
    def num_slots(self) -> int:
        """Total rank capacity."""
        return self._torus.num_nodes * self._rpn

    def node_of(self, slot: SlotCoord) -> TorusCoord:
        """The torus node hosting *slot*."""
        x, y, s = slot
        X, Y, S = self.dims
        if not (0 <= x < X and 0 <= y < Y and 0 <= s < S):
            raise MappingError(f"slot {slot} outside slot box {self.dims}")
        return (x, y, s // self._rpn)

    def slot_index(self, slot: SlotCoord) -> int:
        """Linear slot id (x fastest, then y, then s) for bijection checks."""
        x, y, s = slot
        X, Y, S = self.dims
        if not (0 <= x < X and 0 <= y < Y and 0 <= s < S):
            raise MappingError(f"slot {slot} outside slot box {self.dims}")
        return x + X * (y + Y * s)

    def __repr__(self) -> str:
        X, Y, S = self.dims
        return f"SlotSpace({X}x{Y}x{S}, rpn={self._rpn})"


@dataclass(frozen=True)
class Box:
    """An axis-aligned sub-box of slot space: origin + extents."""

    x0: int
    y0: int
    s0: int
    w: int
    h: int
    d: int

    def __post_init__(self) -> None:
        check_positive_int(self.w, "w")
        check_positive_int(self.h, "h")
        check_positive_int(self.d, "d")
        if min(self.x0, self.y0, self.s0) < 0:
            raise MappingError(f"box origin must be non-negative: {self}")

    @property
    def volume(self) -> int:
        """Number of slots contained."""
        return self.w * self.h * self.d

    @property
    def extents(self) -> Tuple[int, int, int]:
        """``(w, h, d)``."""
        return (self.w, self.h, self.d)

    def slots(self) -> List[SlotCoord]:
        """All slots, x fastest, then y, then s."""
        return [
            (self.x0 + dx, self.y0 + dy, self.s0 + ds)
            for ds in range(self.d)
            for dy in range(self.h)
            for dx in range(self.w)
        ]

    def slots_array(self) -> np.ndarray:
        """All slots as a ``(volume, 3)`` ``int64`` array, :meth:`slots` order."""
        s_idx, y_idx, x_idx = np.indices((self.d, self.h, self.w))
        out = np.empty((self.volume, 3), dtype=np.int64)
        out[:, 0] = self.x0 + x_idx.ravel()
        out[:, 1] = self.y0 + y_idx.ravel()
        out[:, 2] = self.s0 + s_idx.ravel()
        return out


@dataclass(frozen=True)
class Placement:
    """A complete rank -> slot assignment.

    Attributes
    ----------
    space:
        The slot space mapped into.
    grid:
        The virtual process grid mapped from.
    slots:
        ``slots[rank]`` is the slot of world rank *rank*. The constructor
        also accepts a ``(P, 3)`` integer array, which is normalised to
        the tuple form (so equality and reprs are backend-independent)
        while the array is retained for :meth:`slots_array`.
    name:
        The producing mapping's name (for reports).
    """

    space: SlotSpace
    grid: ProcessGrid
    slots: Tuple[SlotCoord, ...]
    name: str

    def __post_init__(self) -> None:
        if isinstance(self.slots, np.ndarray):
            arr = np.ascontiguousarray(self.slots, dtype=np.int64)
            arr = arr.reshape(len(arr), 3)
            arr.flags.writeable = False
            slots = tuple(map(tuple, arr.tolist()))
            object.__setattr__(self, "slots", slots)
            object.__setattr__(self, "_slots_arr", (slots, arr))
        if len(self.slots) != self.grid.size:
            raise MappingError(
                f"placement covers {len(self.slots)} ranks, grid has {self.grid.size}"
            )
        # One shared slot-index implementation (slot_indices) serves both
        # the constructor's bijection check and the verification oracles.
        ids = self.slot_indices()
        if len(set(ids)) != len(ids):
            self._raise_duplicate(ids)

    def _raise_duplicate(self, ids: Sequence[int]) -> None:
        """Report the first duplicated slot exactly as the scalar walk did."""
        seen: Dict[int, int] = {}
        for rank, (slot, idx) in enumerate(zip(self.slots, ids)):
            if idx in seen:
                raise MappingError(
                    f"ranks {seen[idx]} and {rank} both mapped to slot {slot}"
                )
            seen[idx] = rank
        raise AssertionError("duplicate ids vanished")  # pragma: no cover

    def node_of(self, rank: int) -> TorusCoord:
        """Torus node of world rank *rank*."""
        return self.space.node_of(self.slots[rank])

    def nodes(self) -> List[TorusCoord]:
        """Per-rank node coordinates (index = world rank), as tuples."""
        return [self.space.node_of(s) for s in self.slots]

    def slots_array(self) -> np.ndarray:
        """Per-rank slot coordinates as a read-only ``(P, 3)`` array.

        Cached against the identity of :attr:`slots`, so oracles that
        mutate a copied placement's ``slots`` (via ``object.__setattr__``)
        get a freshly derived array, never a stale one.
        """
        cached = self.__dict__.get("_slots_arr")
        if cached is not None and cached[0] is self.slots:
            return cached[1]
        arr = np.asarray(self.slots, dtype=np.int64).reshape(len(self.slots), 3)
        arr.flags.writeable = False
        object.__setattr__(self, "_slots_arr", (self.slots, arr))
        return arr

    def nodes_array(self) -> np.ndarray:
        """Per-rank node coordinates as a read-only ``(P, 3)`` array.

        Feeds :func:`repro.netsim.engine.as_placement` directly — no
        per-rank tuple list is built on the simulation hot path.
        """
        cached = self.__dict__.get("_nodes_arr")
        if cached is not None and cached[0] is self.slots:
            return cached[1]
        nodes = self.slots_array().copy()
        nodes[:, 2] //= self.space.ranks_per_node
        nodes.flags.writeable = False
        object.__setattr__(self, "_nodes_arr", (self.slots, nodes))
        return nodes

    def slot_indices(self) -> List[int]:
        """Linear slot id of every rank, in rank order.

        The placement is a bijection onto a slot subset exactly when
        these ids are pairwise distinct; computed from raw coordinates
        (not ``__post_init__`` state) so verification oracles can
        re-check placements mutated after construction. Vectorized under
        ``REPRO_PLACEMENT=vector``; the scalar walk is the parity oracle.
        """
        X, Y, S = self.space.dims
        if placement_backend() == "vector":
            arr = self.slots_array()
            dims = np.array([X, Y, S], dtype=np.int64)
            ok = (arr >= 0).all(axis=1) & (arr < dims).all(axis=1)
            if not bool(ok.all()):
                x, y, s = self.slots[int(np.flatnonzero(~ok)[0])]
                raise MappingError(
                    f"slot ({x}, {y}, {s}) outside slot box {self.space.dims}"
                )
            return (arr[:, 0] + X * (arr[:, 1] + Y * arr[:, 2])).tolist()
        out: List[int] = []
        for x, y, s in self.slots:
            if not (0 <= x < X and 0 <= y < Y and 0 <= s < S):
                raise MappingError(f"slot ({x}, {y}, {s}) outside slot box {self.space.dims}")
            out.append(x + X * (y + Y * s))
        return out

    def hops_between(self, rank_a: int, rank_b: int) -> int:
        """Torus hop distance between two ranks (0 if co-located)."""
        return self.space.torus.distance(self.node_of(rank_a), self.node_of(rank_b))


class Mapping:
    """Base class of all 2D -> 3D mapping heuristics."""

    #: Short identifier used in tables and reports.
    name: str = "abstract"

    def place(
        self,
        grid: ProcessGrid,
        space: SlotSpace,
        rects: Optional[Sequence[GridRect]] = None,
    ) -> Placement:
        """Produce a placement of *grid*'s ranks into *space*.

        *rects* carries the per-sibling processor rectangles for the
        partition-aware mappings; topology-oblivious mappings ignore it.
        """
        raise NotImplementedError

    def _check_capacity(self, grid: ProcessGrid, space: SlotSpace) -> None:
        if grid.size > space.num_slots:
            raise MappingError(
                f"{grid.size} ranks exceed {space.num_slots} slots of {space!r}"
            )
