"""2D -> 3D topology mapping heuristics (paper Sec 3.3).

A *mapping* places every rank of the 2-D virtual process topology onto a
node of the 3-D torus. Because several ranks may share a node (VN/Dual
modes), mappings actually target *slots*: :class:`SlotSpace` extends the
node torus with a per-node core axis. Messages between slots on the same
node cost zero hops.

Implemented mappings:

* :class:`ObliviousMapping` — Blue Gene's default XYZT order (Fig 5(b)),
  the paper's "topology-oblivious" placement.
* :class:`TxyzMapping` — the stock TXYZ alternative compared in Table 4.
* :class:`PartitionMapping` — each sibling's processor rectangle onto a
  contiguous sub-box of the torus (Fig 6(a)).
* :class:`MultiLevelMapping` — partition mapping with each rectangle
  *folded* across torus planes so that parent-domain neighbours across
  partition seams are also adjacent (Fig 6(b)). Non-foldable rectangles
  fall back to the partition fill, matching the paper's restriction to
  foldable mappings.
"""

from repro.core.mapping.base import Mapping, Placement, SlotSpace, Box
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.mapping.txyz import TxyzMapping
from repro.core.mapping.partition_map import PartitionMapping
from repro.core.mapping.multilevel import MultiLevelMapping
from repro.core.mapping.metrics import (
    MappingMetrics,
    average_hops,
    hop_bytes,
    evaluate_mapping,
)

__all__ = [
    "Mapping",
    "Placement",
    "SlotSpace",
    "Box",
    "ObliviousMapping",
    "TxyzMapping",
    "PartitionMapping",
    "MultiLevelMapping",
    "MappingMetrics",
    "average_hops",
    "hop_bytes",
    "evaluate_mapping",
]
