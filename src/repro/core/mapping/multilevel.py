"""Multi-level mapping — Fig 6(b).

A refinement of partition mapping: each sibling's rectangle is *folded*
(boustrophedon) across the torus planes of its sub-box instead of chunked.
Folding keeps processes on both sides of every wrap seam exactly one hop
apart, and alternating the fold orientation between adjacent partitions
lets parent-domain neighbours across partition boundaries meet at adjacent
(often wrapped) torus coordinates — the "universal mapping scheme
benefitting both the nested simulations and the parent simulation" of the
paper.

Rectangles that do not factor into their sub-box ("non-foldable mappings",
which the paper leaves to future work) fall back to the partition-style
fill automatically.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.mapping.base import Box, SlotCoord
from repro.core.mapping.folding import fill_rect_into_box, fill_rect_into_box_array
from repro.core.mapping.partition_map import PartitionMapping
from repro.runtime.process_grid import GridRect

__all__ = ["MultiLevelMapping"]


class MultiLevelMapping(PartitionMapping):
    """Partition mapping with folded (boustrophedon) box fills."""

    name = "multilevel"
    _fill_style = "fold"

    def _structured_fill(
        self, rect: GridRect, box: Box, orientation: int
    ) -> Dict[Tuple[int, int], SlotCoord] | None:
        """Folded fill; orientation comes from the guillotine recursion.

        Orientations alternate across every cut so a partition's fold
        exits on the plane where its neighbour's fold enters (Fig 6(b):
        sibling 1 folds plane 0 -> 1, sibling 2 curls plane 1 -> 0).
        """
        filled = fill_rect_into_box(
            rect.width, rect.height, box, style="fold", orientation=orientation
        )
        if filled is not None:
            return filled
        # Non-foldable: fall back to the chunked partition fill.
        return fill_rect_into_box(rect.width, rect.height, box, style="chunk")

    def _structured_fill_array(
        self, rect: GridRect, box: Box, orientation: int
    ) -> np.ndarray | None:
        """Array twin of :meth:`_structured_fill` (fold, chunk fallback)."""
        filled = fill_rect_into_box_array(
            rect.width, rect.height, box, style="fold", orientation=orientation
        )
        if filled is not None:
            return filled
        return fill_rect_into_box_array(rect.width, rect.height, box, style="chunk")
