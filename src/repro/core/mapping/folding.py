"""Fold and fill primitives shared by the partition-aware mappings.

Embedding a ``w x h`` rank rectangle into an ``a x b x d`` slot box means
wrapping the rectangle's axes across the box's depth layers. Two wrapping
styles are used:

* **chunk** — split an axis into consecutive runs (``i -> (i % a, i // a)``):
  what plain partition mapping does; run seams may be several hops apart.
* **fold** — boustrophedon wrap (``i -> (a-1-i % a, ...)`` on odd layers):
  the multi-level trick of Fig 6(b); consecutive indices across a fold
  seam stay exactly one layer apart, i.e. one hop.

A generic snake (boustrophedon) serialisation of rectangles and boxes is
also provided as the locality-preserving *fallback* fill when a rectangle
does not factor into its box.

Each primitive has an array twin (``*_array``) used by the vectorized
mapping pipeline (``REPRO_PLACEMENT=vector``): closed-form index algebra
over whole rectangles/boxes instead of per-position Python loops. Array
fills are shaped ``(h, w, 3)`` and indexed ``[j, i]``, exactly the
``{(i, j): slot}`` dicts of the scalar primitives, which remain the
parity oracle.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.mapping.base import Box, SlotCoord
from repro.errors import MappingError

__all__ = [
    "chunk_coord",
    "fold_coord",
    "snake_order_rect",
    "snake_order_box",
    "fill_rect_into_box",
    "snake_fill",
    "snake_index_grid",
    "snake_order_box_array",
    "snake_order_box_depth_first_array",
    "fill_rect_into_box_array",
    "snake_fill_array",
]


def chunk_coord(i: int, a: int) -> Tuple[int, int]:
    """Chunked wrap: ``(position, layer)`` with positions running forward."""
    if i < 0 or a <= 0:
        raise MappingError(f"invalid chunk_coord({i}, {a})")
    return (i % a, i // a)


def fold_coord(i: int, a: int, *, orientation: int = 0) -> Tuple[int, int]:
    """Folded wrap: positions reverse on odd layers (boustrophedon).

    ``orientation`` flips which layers run forward — used to make
    neighbouring partitions' folds meet at adjacent layers.
    """
    if i < 0 or a <= 0:
        raise MappingError(f"invalid fold_coord({i}, {a})")
    pos, layer = i % a, i // a
    if (layer + orientation) % 2:
        pos = a - 1 - pos
    return (pos, layer)


def snake_order_rect(w: int, h: int) -> Iterator[Tuple[int, int]]:
    """All ``(i, j)`` of a rectangle in row-boustrophedon order.

    Consecutive outputs are always 4-neighbour adjacent.
    """
    for j in range(h):
        cols = range(w) if j % 2 == 0 else range(w - 1, -1, -1)
        for i in cols:
            yield (i, j)


def snake_order_box(box: Box) -> List[SlotCoord]:
    """All slots of *box* in a 3-D boustrophedon (consecutive = adjacent).

    Layers (s) are traversed in order; within each layer rows snake, and
    the row direction also snakes between layers so the first slot of a
    layer sits directly above the last slot of the previous one.
    """
    out: List[SlotCoord] = []
    for ds in range(box.d):
        rows = range(box.h) if ds % 2 == 0 else range(box.h - 1, -1, -1)
        for row_idx, dy in enumerate(rows):
            # Row direction alternates globally so consecutive slots touch.
            forward = (ds * box.h + row_idx) % 2 == 0
            cols = range(box.w) if forward else range(box.w - 1, -1, -1)
            for dx in cols:
                out.append((box.x0 + dx, box.y0 + dy, box.s0 + ds))
    return out


def fill_rect_into_box(
    w: int,
    h: int,
    box: Box,
    *,
    style: str,
    orientation: int = 0,
) -> Dict[Tuple[int, int], SlotCoord] | None:
    """Embed a ``w x h`` rectangle into *box* by wrapping both axes.

    The x axis wraps across ``dx = ceil(w / box.w)`` layers and the y axis
    across ``dy = ceil(h / box.h)``; layer pairs combine into the box depth
    as ``s = sy * dx + sx``. Returns ``None`` when ``dx * dy > box.d``
    (the rectangle does not factor into the box) so callers can fall back
    to :func:`snake_fill`.

    ``style`` is ``"chunk"`` (partition mapping) or ``"fold"``
    (multi-level mapping).
    """
    if style not in ("chunk", "fold"):
        raise MappingError(f"unknown fill style {style!r}")
    if w * h != box.volume:
        raise MappingError(
            f"rect {w}x{h} has {w * h} ranks, box {box} has {box.volume} slots"
        )
    dx = -(-w // box.w)
    dy = -(-h // box.h)
    if dx * dy > box.d:
        return None

    out: Dict[Tuple[int, int], SlotCoord] = {}
    # Orientation only matters along axes that actually fold (layers > 1);
    # flipping an unfolded axis would be a gratuitous reflection.
    y_or = orientation if dy > 1 else 0
    x_or_base = orientation if dx > 1 else 0
    for j in range(h):
        if style == "fold":
            y, sy = fold_coord(j, box.h, orientation=y_or)
        else:
            y, sy = chunk_coord(j, box.h)
        for i in range(w):
            if style == "fold":
                x, sx = fold_coord(i, box.w, orientation=x_or_base + sy)
                # Snake the x-layers within each y-layer so successive
                # sx differ by one slot plane.
                s_layer = sy * dx + (sx if sy % 2 == 0 else dx - 1 - sx)
                if orientation % 2:
                    # Odd orientation reverses the layer order so this
                    # partition's fold enters where its neighbour's fold
                    # exits (Fig 6(b): sibling 2 curls plane 1 -> 0).
                    s_layer = dx * dy - 1 - s_layer if dx * dy > 1 else s_layer
            else:
                x, sx = chunk_coord(i, box.w)
                s_layer = sy * dx + sx
            out[(i, j)] = (box.x0 + x, box.y0 + y, box.s0 + s_layer)
    return out


def snake_order_box_depth_first(box: Box) -> List[SlotCoord]:
    """Box slots serialised with the depth (s) axis *fastest*.

    Node columns are visited in a boustrophedon over the ``(x, y)``
    footprint and each column's slots snake up/down — consecutive slots
    are adjacent, and runs of ``ranks_per_node`` consecutive slots land on
    the same node. This order suits deep thin boxes, where the layer-major
    order of :func:`snake_order_box` would put virtual-topology rows many
    layers apart.
    """
    out: List[SlotCoord] = []
    col = 0
    for dy in range(box.h):
        cols = range(box.w) if dy % 2 == 0 else range(box.w - 1, -1, -1)
        for dx in cols:
            depths = range(box.d) if col % 2 == 0 else range(box.d - 1, -1, -1)
            for ds in depths:
                out.append((box.x0 + dx, box.y0 + dy, box.s0 + ds))
            col += 1
    return out


def snake_fill(
    w: int, h: int, box: Box, *, depth_first: bool = False
) -> Dict[Tuple[int, int], SlotCoord]:
    """Fallback fill: pair the rectangle snake with a box snake.

    Always succeeds when volumes match; consecutive rectangle positions
    land on adjacent slots, so locality degrades gracefully rather than
    failing. ``depth_first`` selects the s-fastest box serialisation.
    """
    if w * h != box.volume:
        raise MappingError(
            f"rect {w}x{h} has {w * h} ranks, box {box} has {box.volume} slots"
        )
    slots = snake_order_box_depth_first(box) if depth_first else snake_order_box(box)
    return {pos: slots[k] for k, pos in enumerate(snake_order_rect(w, h))}


# ----------------------------------------------------------------------
# Array twins (the vectorized pipeline)
# ----------------------------------------------------------------------
def snake_index_grid(w: int, h: int) -> np.ndarray:
    """``(h, w)`` array of each position's rank in :func:`snake_order_rect`.

    ``out[j, i]`` is the serialisation index of rectangle position
    ``(i, j)`` — even rows run forward, odd rows backward.
    """
    i = np.arange(w, dtype=np.int64)
    j = np.arange(h, dtype=np.int64)
    return j[:, None] * w + np.where(j[:, None] % 2 == 0, i, w - 1 - i)


def snake_order_box_array(box: Box) -> np.ndarray:
    """``(volume, 3)`` slots of *box* in :func:`snake_order_box` order."""
    ds = np.arange(box.d, dtype=np.int64)
    row_idx = np.arange(box.h, dtype=np.int64)
    col_idx = np.arange(box.w, dtype=np.int64)
    dy = np.where(ds[:, None] % 2 == 0, row_idx, box.h - 1 - row_idx)  # (d, h)
    forward = (ds[:, None] * box.h + row_idx) % 2 == 0  # (d, h)
    dx = np.where(forward[:, :, None], col_idx, box.w - 1 - col_idx)  # (d, h, w)
    out = np.empty((box.d, box.h, box.w, 3), dtype=np.int64)
    out[..., 0] = box.x0 + dx
    out[..., 1] = box.y0 + dy[:, :, None]
    out[..., 2] = box.s0 + ds[:, None, None]
    return out.reshape(box.volume, 3)


def snake_order_box_depth_first_array(box: Box) -> np.ndarray:
    """``(volume, 3)`` slots in :func:`snake_order_box_depth_first` order."""
    dy = np.arange(box.h, dtype=np.int64)
    colpos = np.arange(box.w, dtype=np.int64)
    dsq = np.arange(box.d, dtype=np.int64)
    dx = np.where(dy[:, None] % 2 == 0, colpos, box.w - 1 - colpos)  # (h, w)
    col = dy[:, None] * box.w + colpos  # the visit counter of the scalar loop
    ds = np.where(col[:, :, None] % 2 == 0, dsq, box.d - 1 - dsq)  # (h, w, d)
    out = np.empty((box.h, box.w, box.d, 3), dtype=np.int64)
    out[..., 0] = box.x0 + dx[:, :, None]
    out[..., 1] = box.y0 + dy[:, None, None]
    out[..., 2] = box.s0 + ds
    return out.reshape(box.volume, 3)


def fill_rect_into_box_array(
    w: int,
    h: int,
    box: Box,
    *,
    style: str,
    orientation: int = 0,
) -> Optional[np.ndarray]:
    """Array twin of :func:`fill_rect_into_box`: ``(h, w, 3)`` or ``None``.

    Same wrap algebra evaluated once per axis and broadcast, same
    ``None`` condition when the rectangle does not factor into the box.
    """
    if style not in ("chunk", "fold"):
        raise MappingError(f"unknown fill style {style!r}")
    if w * h != box.volume:
        raise MappingError(
            f"rect {w}x{h} has {w * h} ranks, box {box} has {box.volume} slots"
        )
    dx_layers = -(-w // box.w)
    dy_layers = -(-h // box.h)
    if dx_layers * dy_layers > box.d:
        return None

    i = np.arange(w, dtype=np.int64)
    j = np.arange(h, dtype=np.int64)
    pos_x, sx = i % box.w, i // box.w  # (w,)
    pos_y, sy = j % box.h, j // box.h  # (h,)
    out = np.empty((h, w, 3), dtype=np.int64)
    if style == "fold":
        y_or = orientation if dy_layers > 1 else 0
        x_or_base = orientation if dx_layers > 1 else 0
        y = np.where((sy + y_or) % 2 == 1, box.h - 1 - pos_y, pos_y)
        flip_x = (sx[None, :] + x_or_base + sy[:, None]) % 2 == 1  # (h, w)
        x = np.where(flip_x, box.w - 1 - pos_x[None, :], pos_x[None, :])
        s_layer = sy[:, None] * dx_layers + np.where(
            sy[:, None] % 2 == 0, sx[None, :], dx_layers - 1 - sx[None, :]
        )
        if orientation % 2 and dx_layers * dy_layers > 1:
            s_layer = dx_layers * dy_layers - 1 - s_layer
        out[..., 0] = box.x0 + x
        out[..., 1] = (box.y0 + y)[:, None]
    else:
        s_layer = sy[:, None] * dx_layers + sx[None, :]
        out[..., 0] = box.x0 + pos_x[None, :]
        out[..., 1] = (box.y0 + pos_y)[:, None]
    out[..., 2] = box.s0 + s_layer
    return out


def snake_fill_array(
    w: int, h: int, box: Box, *, depth_first: bool = False
) -> np.ndarray:
    """Array twin of :func:`snake_fill`: the fallback fill as ``(h, w, 3)``."""
    if w * h != box.volume:
        raise MappingError(
            f"rect {w}x{h} has {w * h} ranks, box {box} has {box.volume} slots"
        )
    order = (
        snake_order_box_depth_first_array(box)
        if depth_first
        else snake_order_box_array(box)
    )
    return order[snake_index_grid(w, h)]
