"""Mapping quality metrics: hop counts and hop-bytes.

The paper evaluates mappings by the average number of torus hops between
communicating processes (Fig 12(b) reports a ~50% hop reduction for the
topology-aware mappings) and by the hop-byte volume the messages induce.

Under the default array backend (``REPRO_PLACEMENT=vector``) every
metric broadcasts the torus distance over whole message columns via the
placement's node array — one NumPy pass instead of a
``Placement.hops_between`` call per message. Hops and byte counts are
integers, so the scalar oracle (``REPRO_PLACEMENT=scalar``) agrees
exactly, division-for-division.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.mapping.base import Placement
from repro.errors import MappingError
from repro.runtime.backend import placement_backend
from repro.runtime.halo import HaloBatch, HaloMessage, HaloSpec, halo_batch, halo_messages
from repro.runtime.process_grid import GridRect

__all__ = ["MappingMetrics", "average_hops", "hop_bytes", "evaluate_mapping"]

Messages = Union[HaloBatch, Iterable[HaloMessage]]


@dataclass(frozen=True)
class MappingMetrics:
    """Aggregate hop statistics of a placement under a message set."""

    num_messages: int
    average_hops: float
    max_hops: int
    hop_bytes: float
    #: Fraction of messages between co-located ranks (0 hops).
    intra_node_fraction: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"msgs={self.num_messages} avg_hops={self.average_hops:.3f} "
            f"max_hops={self.max_hops} hop_bytes={self.hop_bytes:.3g}"
        )


def _message_columns(messages: Messages) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(src, dst, nbytes)`` int64 columns of either message form."""
    if isinstance(messages, HaloBatch):
        return messages.src, messages.dst, messages.nbytes
    batch = HaloBatch.from_messages(
        messages if isinstance(messages, list) else list(messages)
    )
    return batch.src, batch.dst, batch.nbytes


def _hops_of(placement: Placement, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Torus hop distance of every message, broadcast over the node array."""
    nodes = placement.nodes_array()
    dims = np.asarray(placement.space.torus.dims, dtype=np.int64)
    d = np.abs(nodes[src] - nodes[dst]) % dims
    return np.minimum(d, dims - d).sum(axis=1)


def average_hops(placement: Placement, messages: Messages) -> float:
    """Mean torus hop count over *messages* under *placement*."""
    if placement_backend() == "vector":
        src, dst, _ = _message_columns(messages)
        if len(src) == 0:
            raise MappingError("no messages to evaluate")
        return int(_hops_of(placement, src, dst).sum()) / len(src)
    if isinstance(messages, HaloBatch):
        messages = messages.to_messages()
    total = 0
    count = 0
    for msg in messages:
        total += placement.hops_between(msg.src, msg.dst)
        count += 1
    if count == 0:
        raise MappingError("no messages to evaluate")
    return total / count


def hop_bytes(placement: Placement, messages: Messages) -> float:
    """Total hop-byte volume (sum of bytes * hops) — the classic metric."""
    if placement_backend() == "vector":
        src, dst, nbytes = _message_columns(messages)
        return float(int((_hops_of(placement, src, dst) * nbytes).sum()))
    if isinstance(messages, HaloBatch):
        messages = messages.to_messages()
    return float(
        sum(placement.hops_between(m.src, m.dst) * m.nbytes for m in messages)
    )


def evaluate_mapping(
    placement: Placement,
    messages: Union[HaloBatch, Sequence[HaloMessage]],
) -> MappingMetrics:
    """Full metric set for *messages* under *placement*."""
    if placement_backend() == "vector":
        src, dst, nbytes = _message_columns(messages)
        n = len(src)
        if n == 0:
            raise MappingError("no messages to evaluate")
        hops = _hops_of(placement, src, dst)
        return MappingMetrics(
            num_messages=n,
            average_hops=int(hops.sum()) / n,
            max_hops=int(hops.max()),
            hop_bytes=float(int((hops * nbytes).sum())),
            intra_node_fraction=int((hops == 0).sum()) / n,
        )
    if isinstance(messages, HaloBatch):
        messages = messages.to_messages()
    if not messages:
        raise MappingError("no messages to evaluate")
    hops: List[int] = [placement.hops_between(m.src, m.dst) for m in messages]
    hb = float(sum(h * m.nbytes for h, m in zip(hops, messages)))
    zero = sum(1 for h in hops if h == 0)
    return MappingMetrics(
        num_messages=len(messages),
        average_hops=sum(hops) / len(hops),
        max_hops=max(hops),
        hop_bytes=hb,
        intra_node_fraction=zero / len(hops),
    )


def nest_and_parent_metrics(
    placement: Placement,
    parent_domain: tuple[int, int],
    nest_domains: Sequence[tuple[int, int]],
    nest_rects: Sequence[GridRect],
    spec: Optional[HaloSpec] = None,
) -> dict[str, MappingMetrics]:
    """Metrics for the parent exchange and each nest exchange.

    ``parent_domain``/``nest_domains`` are ``(nx, ny)`` sizes; the parent
    always runs on the full grid. Returns a dict with keys ``"parent"``
    and ``"nest<i>"``.
    """
    spec = spec or HaloSpec()
    grid = placement.grid
    build = halo_batch if placement_backend() == "vector" else halo_messages
    out: dict[str, MappingMetrics] = {}
    pnx, pny = parent_domain
    out["parent"] = evaluate_mapping(
        placement, build(grid, grid.full_rect(), pnx, pny, spec)
    )
    for i, ((nnx, nny), rect) in enumerate(zip(nest_domains, nest_rects)):
        msgs = build(grid, rect, nnx, nny, spec)
        out[f"nest{i}"] = evaluate_mapping(placement, msgs)
    return out
