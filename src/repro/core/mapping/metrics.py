"""Mapping quality metrics: hop counts and hop-bytes.

The paper evaluates mappings by the average number of torus hops between
communicating processes (Fig 12(b) reports a ~50% hop reduction for the
topology-aware mappings) and by the hop-byte volume the messages induce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.mapping.base import Placement
from repro.errors import MappingError
from repro.runtime.halo import HaloMessage, HaloSpec, halo_messages
from repro.runtime.process_grid import GridRect

__all__ = ["MappingMetrics", "average_hops", "hop_bytes", "evaluate_mapping"]


@dataclass(frozen=True)
class MappingMetrics:
    """Aggregate hop statistics of a placement under a message set."""

    num_messages: int
    average_hops: float
    max_hops: int
    hop_bytes: float
    #: Fraction of messages between co-located ranks (0 hops).
    intra_node_fraction: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"msgs={self.num_messages} avg_hops={self.average_hops:.3f} "
            f"max_hops={self.max_hops} hop_bytes={self.hop_bytes:.3g}"
        )


def average_hops(placement: Placement, messages: Iterable[HaloMessage]) -> float:
    """Mean torus hop count over *messages* under *placement*."""
    total = 0
    count = 0
    for msg in messages:
        total += placement.hops_between(msg.src, msg.dst)
        count += 1
    if count == 0:
        raise MappingError("no messages to evaluate")
    return total / count


def hop_bytes(placement: Placement, messages: Iterable[HaloMessage]) -> float:
    """Total hop-byte volume (sum of bytes * hops) — the classic metric."""
    return float(
        sum(placement.hops_between(m.src, m.dst) * m.nbytes for m in messages)
    )


def evaluate_mapping(
    placement: Placement,
    messages: Sequence[HaloMessage],
) -> MappingMetrics:
    """Full metric set for *messages* under *placement*."""
    if not messages:
        raise MappingError("no messages to evaluate")
    hops: List[int] = [placement.hops_between(m.src, m.dst) for m in messages]
    hb = float(sum(h * m.nbytes for h, m in zip(hops, messages)))
    zero = sum(1 for h in hops if h == 0)
    return MappingMetrics(
        num_messages=len(messages),
        average_hops=sum(hops) / len(hops),
        max_hops=max(hops),
        hop_bytes=hb,
        intra_node_fraction=zero / len(hops),
    )


def nest_and_parent_metrics(
    placement: Placement,
    parent_domain: tuple[int, int],
    nest_domains: Sequence[tuple[int, int]],
    nest_rects: Sequence[GridRect],
    spec: Optional[HaloSpec] = None,
) -> dict[str, MappingMetrics]:
    """Metrics for the parent exchange and each nest exchange.

    ``parent_domain``/``nest_domains`` are ``(nx, ny)`` sizes; the parent
    always runs on the full grid. Returns a dict with keys ``"parent"``
    and ``"nest<i>"``.
    """
    spec = spec or HaloSpec()
    grid = placement.grid
    out: dict[str, MappingMetrics] = {}
    pnx, pny = parent_domain
    out["parent"] = evaluate_mapping(
        placement, halo_messages(grid, grid.full_rect(), pnx, pny, spec)
    )
    for i, ((nnx, nny), rect) in enumerate(zip(nest_domains, nest_rects)):
        msgs = halo_messages(grid, rect, nnx, nny, spec)
        out[f"nest{i}"] = evaluate_mapping(placement, msgs)
    return out
