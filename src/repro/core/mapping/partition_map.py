"""Partition mapping — Fig 6(a).

Each sibling's processor rectangle is mapped onto a contiguous sub-box of
the torus (recovered through the guillotine structure of the allocation)
and filled with the *chunk* style: the rectangle keeps its 2-D shape
within each torus plane, planes stack consecutively. Neighbouring
processes of a nest are therefore neighbouring torus nodes; parent-domain
neighbours across partition seams may still be a few hops apart (the gap
the multi-level mapping closes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.mapping.base import Box, Mapping, Placement, SlotCoord, SlotSpace
from repro.core.mapping.boxes import assign_boxes
from repro.core.mapping.folding import (
    fill_rect_into_box,
    fill_rect_into_box_array,
    snake_fill,
    snake_fill_array,
    snake_index_grid,
    snake_order_box,
    snake_order_box_array,
    snake_order_box_depth_first,
    snake_order_box_depth_first_array,
    snake_order_rect,
)
from repro.errors import MappingError
from repro.runtime.backend import placement_backend
from repro.runtime.process_grid import GridRect, ProcessGrid

__all__ = ["PartitionMapping"]


class PartitionMapping(Mapping):
    """Map each partition onto contiguous torus nodes (chunk fill)."""

    name = "partition"
    _fill_style = "chunk"

    def place(
        self,
        grid: ProcessGrid,
        space: SlotSpace,
        rects: Optional[Sequence[GridRect]] = None,
    ) -> Placement:
        """Place *grid* ranks respecting the per-sibling *rects*.

        Without *rects* the whole grid is treated as a single partition,
        which still yields a locality-preserving 2D->3D embedding (useful
        for single-domain runs).
        """
        self._check_capacity(grid, space)
        if grid.size != space.num_slots:
            raise MappingError(
                f"partition-aware mappings need a full machine partition: "
                f"{grid.size} ranks vs {space.num_slots} slots"
            )
        if rects is None:
            rects = [grid.full_rect()]
        X, Y, S = space.dims
        root = Box(0, 0, 0, X, Y, S)
        if placement_backend() == "vector":
            return self._place_array(grid, space, rects, root)

        # The box-split axis preference interacts with how rectangles
        # factor into their boxes in hard-to-predict ways; build the
        # placement under both preferences and keep the one with fewer
        # internal hops (assignment is cheap relative to the savings).
        best: tuple[float, Dict[int, SlotCoord]] | None = None
        for prefer_depth in (self._fill_style == "chunk", self._fill_style != "chunk"):
            own, shared = assign_boxes(rects, root, prefer_depth_cut=prefer_depth)
            slot_of_rank: Dict[int, SlotCoord] = {}
            handled_shared: set[int] = set()
            score = 0.0
            for idx, rect in enumerate(rects):
                if idx in own:
                    box, orientation = own[idx]
                    score += self._fill_own(
                        grid, rect, box, orientation, slot_of_rank, space
                    )
                elif idx not in handled_shared:
                    box, group = shared[idx]
                    score += self._fill_shared(
                        grid, rects, group, box, slot_of_rank, space
                    )
                    handled_shared.update(group)
            if best is None or score < best[0]:
                best = (score, slot_of_rank)
        assert best is not None

        # Third candidate: one global structured fill of the whole grid.
        # When partition areas do not factor into the box (no exact
        # guillotine split exists), the per-rect path degrades to snake
        # segments; a global fold keeps every 2-D adjacency short and each
        # rectangle still lands on a contiguous folded band.
        global_choice = self._global_fill(grid, root, rects, space)
        if global_choice is not None and global_choice[0] < best[0]:
            best = global_choice

        slots = tuple(best[1][r] for r in range(grid.size))
        return Placement(space=space, grid=grid, slots=slots, name=self.name)

    # ------------------------------------------------------------------
    # Array backend — same decision flow as the scalar path below, but
    # every candidate fill is an ``(h, w, 3)`` slot array and the hop
    # scores come out of one broadcast torus-distance pass per candidate.
    # Scores are exact-integer sums divided once, so candidate selection
    # (first minimum wins) is bit-identical to the scalar oracle.
    def _place_array(
        self,
        grid: ProcessGrid,
        space: SlotSpace,
        rects: Sequence[GridRect],
        root: Box,
    ) -> Placement:
        best: tuple[float, np.ndarray] | None = None
        for prefer_depth in (self._fill_style == "chunk", self._fill_style != "chunk"):
            own, shared = assign_boxes(rects, root, prefer_depth_cut=prefer_depth)
            slot_arr = np.full((grid.size, 3), -1, dtype=np.int64)
            handled_shared: set[int] = set()
            score = 0.0
            for idx, rect in enumerate(rects):
                if idx in own:
                    box, orientation = own[idx]
                    score += self._fill_own_array(
                        grid, rect, box, orientation, slot_arr, space
                    )
                elif idx not in handled_shared:
                    box, group = shared[idx]
                    score += self._fill_shared_array(
                        grid, rects, group, box, slot_arr, space
                    )
                    handled_shared.update(group)
            if best is None or score < best[0]:
                best = (score, slot_arr)
        assert best is not None

        global_choice = self._global_fill_array(grid, root, rects, space)
        if global_choice is not None and global_choice[0] < best[0]:
            best = global_choice
        return Placement(space=space, grid=grid, slots=best[1], name=self.name)

    @staticmethod
    def _rect_ranks(grid: ProcessGrid, rect: GridRect) -> np.ndarray:
        """``(h, w)`` grid of the ranks covered by *rect*."""
        gx = rect.x0 + np.arange(rect.width, dtype=np.int64)
        gy = rect.y0 + np.arange(rect.height, dtype=np.int64)
        return gy[:, None] * grid.px + gx[None, :]

    def _fill_own_array(
        self,
        grid: ProcessGrid,
        rect: GridRect,
        box: Box,
        orientation: int,
        out: np.ndarray,
        space: SlotSpace,
    ) -> float:
        candidates: list[np.ndarray] = []
        fill = self._structured_fill_array(rect, box, orientation)
        if fill is not None:
            candidates.append(fill)
        transposed = self._structured_fill_array(
            GridRect(rect.y0, rect.x0, rect.height, rect.width), box, orientation
        )
        if transposed is not None:
            candidates.append(transposed.transpose(1, 0, 2))
        candidates.append(snake_fill_array(rect.width, rect.height, box))
        candidates.append(
            snake_fill_array(rect.width, rect.height, box, depth_first=True)
        )

        scores = [self._fill_score_array(f, space) for f in candidates]
        best_index = min(range(len(scores)), key=scores.__getitem__)
        ranks = self._rect_ranks(grid, rect)
        out[ranks.ravel()] = candidates[best_index].reshape(-1, 3)
        return scores[best_index] * rect.area

    @staticmethod
    def _fill_score_array(fill: np.ndarray, space: SlotSpace) -> float:
        """Array twin of :meth:`_fill_score` over an ``(h, w, 3)`` fill."""
        nodes = fill.copy()
        nodes[..., 2] //= space.ranks_per_node
        dims = np.asarray(space.torus.dims, dtype=np.int64)
        h, w = fill.shape[:2]
        total = 0
        if w > 1:
            d = np.abs(nodes[:, :-1] - nodes[:, 1:]) % dims
            total += int(np.minimum(d, dims - d).sum())
        if h > 1:
            d = np.abs(nodes[:-1, :] - nodes[1:, :]) % dims
            total += int(np.minimum(d, dims - d).sum())
        count = h * (w - 1) + w * (h - 1)
        return total / count if count else 0.0

    def _structured_fill_array(
        self, rect: GridRect, box: Box, orientation: int
    ) -> np.ndarray | None:
        return fill_rect_into_box_array(
            rect.width, rect.height, box, style=self._fill_style
        )

    def _fill_shared_array(
        self,
        grid: ProcessGrid,
        rects: Sequence[GridRect],
        group: Sequence[int],
        box: Box,
        out: np.ndarray,
        space: SlotSpace,
    ) -> float:
        scores: list[float] = []
        fills: list[list[tuple[np.ndarray, np.ndarray]]] = []
        for order in (snake_order_box_array(box), snake_order_box_depth_first_array(box)):
            placed: list[tuple[np.ndarray, np.ndarray]] = []
            score = 0.0
            cursor = 0
            for idx in group:
                rect = rects[idx]
                segment = order[cursor : cursor + rect.area]
                cursor += rect.area
                local = segment[snake_index_grid(rect.width, rect.height)]
                score += self._fill_score_array(local, space) * rect.area
                placed.append((self._rect_ranks(grid, rect), local))
            if cursor != len(order):  # pragma: no cover - defensive
                raise MappingError("shared box fill did not consume all slots")
            fills.append(placed)
            scores.append(score)
        best_index = scores.index(min(scores))
        for ranks, local in fills[best_index]:
            out[ranks.ravel()] = local.reshape(-1, 3)
        return scores[best_index]

    def _global_fill_array(
        self,
        grid: ProcessGrid,
        root: Box,
        rects: Sequence[GridRect],
        space: SlotSpace,
    ) -> tuple[float, np.ndarray] | None:
        fill = fill_rect_into_box_array(grid.px, grid.py, root, style=self._fill_style)
        if fill is None:
            return None
        slot_arr = np.full((grid.size, 3), -1, dtype=np.int64)
        score = 0.0
        for rect in rects:
            local = fill[rect.y0 : rect.y0 + rect.height, rect.x0 : rect.x0 + rect.width]
            score += self._fill_score_array(local, space) * rect.area
            ranks = self._rect_ranks(grid, rect)
            slot_arr[ranks.ravel()] = local.reshape(-1, 3)
        return (score, slot_arr)

    def _global_fill(
        self,
        grid: ProcessGrid,
        root: Box,
        rects: Sequence[GridRect],
        space: SlotSpace,
    ) -> tuple[float, Dict[int, SlotCoord]] | None:
        fill = fill_rect_into_box(grid.px, grid.py, root, style=self._fill_style)
        if fill is None:
            return None
        slot_of_rank: Dict[int, SlotCoord] = {}
        score = 0.0
        for rect in rects:
            local = {
                (i, j): fill[(rect.x0 + i, rect.y0 + j)]
                for j in range(rect.height)
                for i in range(rect.width)
            }
            score += self._fill_score(local, rect, space) * rect.area
            for (i, j), slot in local.items():
                slot_of_rank[grid.rank_of(rect.x0 + i, rect.y0 + j)] = slot
        return (score, slot_of_rank)

    # ------------------------------------------------------------------
    def _fill_own(
        self,
        grid: ProcessGrid,
        rect: GridRect,
        box: Box,
        orientation: int,
        out: Dict[int, SlotCoord],
        space: SlotSpace,
    ) -> float:
        """Fill one rectangle, picking the best of several candidate fills.

        Candidates: the structured (chunk/fold) fill, the same with the
        rectangle's axes transposed (sometimes only one orientation
        factors into the box), and the always-valid snake fallback. The
        winner minimises the mean hop distance over the rectangle's
        internal 4-neighbour pairs — a cheap local proxy for the halo
        cost the network simulator will charge.
        """
        candidates: list[Dict[Tuple[int, int], SlotCoord]] = []
        fill = self._structured_fill(rect, box, orientation)
        if fill is not None:
            candidates.append(fill)
        transposed = self._structured_fill(
            GridRect(rect.y0, rect.x0, rect.height, rect.width), box, orientation
        )
        if transposed is not None:
            candidates.append(
                {(i, j): slot for (j, i), slot in transposed.items()}
            )
        candidates.append(snake_fill(rect.width, rect.height, box))
        candidates.append(snake_fill(rect.width, rect.height, box, depth_first=True))

        scored = [(self._fill_score(f, rect, space), f) for f in candidates]
        best_score, best = min(scored, key=lambda sf: sf[0])
        for (i, j), slot in best.items():
            out[grid.rank_of(rect.x0 + i, rect.y0 + j)] = slot
        return best_score * rect.area

    @staticmethod
    def _fill_score(
        fill: Dict[Tuple[int, int], SlotCoord], rect: GridRect, space: SlotSpace
    ) -> float:
        """Mean torus hops over internal 4-neighbour pairs (lower = better)."""
        torus = space.torus
        total = 0
        count = 0
        for j in range(rect.height):
            for i in range(rect.width):
                here = space.node_of(fill[(i, j)])
                if i + 1 < rect.width:
                    total += torus.distance(here, space.node_of(fill[(i + 1, j)]))
                    count += 1
                if j + 1 < rect.height:
                    total += torus.distance(here, space.node_of(fill[(i, j + 1)]))
                    count += 1
        return total / count if count else 0.0

    def _structured_fill(
        self, rect: GridRect, box: Box, orientation: int
    ) -> Dict[Tuple[int, int], SlotCoord] | None:
        return fill_rect_into_box(
            rect.width, rect.height, box, style=self._fill_style
        )

    def _fill_shared(
        self,
        grid: ProcessGrid,
        rects: Sequence[GridRect],
        group: Sequence[int],
        box: Box,
        out: Dict[int, SlotCoord],
        space: SlotSpace,
    ) -> float:
        """Give each group member a contiguous snake segment of the box.

        Both box serialisations (layer-major and depth-first) are tried;
        the one with the lower total internal-hop score across the group
        wins — deep boxes strongly favour the depth-first order.
        """
        candidates: list[Dict[int, SlotCoord]] = []
        scores: list[float] = []
        for order in (snake_order_box(box), snake_order_box_depth_first(box)):
            fill: Dict[int, SlotCoord] = {}
            score = 0.0
            cursor = 0
            for idx in group:
                rect = rects[idx]
                local: Dict[Tuple[int, int], SlotCoord] = {}
                for i, j in snake_order_rect(rect.width, rect.height):
                    local[(i, j)] = order[cursor]
                    cursor += 1
                score += self._fill_score(local, rect, space) * rect.area
                for (i, j), slot in local.items():
                    fill[grid.rank_of(rect.x0 + i, rect.y0 + j)] = slot
            if cursor != len(order):  # pragma: no cover - defensive
                raise MappingError("shared box fill did not consume all slots")
            candidates.append(fill)
            scores.append(score)
        best_index = scores.index(min(scores))
        out.update(candidates[best_index])
        return scores[best_index]
