"""Prototype 2D -> N-D torus mapping (the Blue Gene/Q future work).

The paper's conclusion: "we plan to extend the mapping heuristics ...
as well as develop novel schemes for the 5D torus topology of Blue
Gene/Q". This module implements such a scheme:

**Mixed-radix folding.** Split the torus dimensions (plus a virtual
"core" dimension of ``ranks_per_node`` slots) into two groups whose
extents multiply to the process grid's ``Px`` and ``Py``. Each grid axis
is then folded boustrophedon-wise through its dimension group: the
digit of every level reverses direction whenever the level above
advances, so *consecutive grid positions always differ by one step in
exactly one torus dimension* — every 2-D neighbour pair is at most one
hop apart (zero when the step lands in the core dimension).

The default BG/Q placement (ranks in ABCDE order, like XYZT on 3-D
machines) is provided as the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MappingError
from repro.runtime.halo import HaloMessage
from repro.runtime.process_grid import ProcessGrid
from repro.topology.torusnd import NdCoord, TorusND

__all__ = [
    "NdPlacement",
    "fold_mixed_radix",
    "split_dims_for_grid",
    "default_nd_placement",
    "folded_nd_placement",
    "nd_average_hops",
]

#: Marker index for the virtual core dimension in dimension groups.
CORE_DIM = -1


@dataclass(frozen=True)
class NdPlacement:
    """Rank -> N-D torus node assignment."""

    torus: TorusND
    grid: ProcessGrid
    nodes: Tuple[NdCoord, ...]
    ranks_per_node: int
    name: str

    def __post_init__(self) -> None:
        if len(self.nodes) != self.grid.size:
            raise MappingError(
                f"placement covers {len(self.nodes)} ranks, grid has {self.grid.size}"
            )
        counts: Dict[NdCoord, int] = {}
        for node in self.nodes:
            if not self.torus.contains(node):
                raise MappingError(f"node {node} outside torus {self.torus.dims}")
            counts[node] = counts.get(node, 0) + 1
            if counts[node] > self.ranks_per_node:
                raise MappingError(
                    f"node {node} holds more than {self.ranks_per_node} ranks"
                )

    def node_of(self, rank: int) -> NdCoord:
        """Torus node of world rank *rank*."""
        return self.nodes[rank]

    def hops_between(self, a: int, b: int) -> int:
        """Torus hop distance between two ranks."""
        return self.torus.distance(self.nodes[a], self.nodes[b])


def fold_mixed_radix(i: int, dims: Sequence[int]) -> Tuple[int, ...]:
    """Boustrophedon mixed-radix digits of *i* over *dims* (first fastest).

    Consecutive *i* differ by exactly one step in exactly one digit —
    the N-D generalisation of :func:`repro.core.mapping.folding.fold_coord`.
    """
    total = 1
    for d in dims:
        total *= d
    if not (0 <= i < total):
        raise MappingError(f"index {i} outside mixed radix of product {total}")
    digits: List[int] = []
    stride = 1
    for d in dims:
        digit = (i // stride) % d
        layer = i // (stride * d)
        digits.append(d - 1 - digit if layer % 2 else digit)
        stride *= d
    return tuple(digits)


def split_dims_for_grid(
    torus: TorusND, ranks_per_node: int, px: int, py: int
) -> Optional[Tuple[List[int], List[int]]]:
    """Partition torus dims (+ core dim) into groups with products px, py.

    Returns ``(x_dims, y_dims)`` as lists of dimension indices
    (:data:`CORE_DIM` marks the virtual core dimension, placed in the x
    group so x-neighbours co-locate first), or ``None`` when no exact
    split exists. Among valid splits, the one spreading each axis over
    the fewest dimensions is preferred (fewer fold seams).
    """
    if px * py != torus.num_nodes * ranks_per_node:
        raise MappingError(
            f"grid {px}x{py} does not fill {torus.num_nodes} nodes x "
            f"{ranks_per_node} ranks"
        )
    entries: List[Tuple[int, int]] = [(CORE_DIM, ranks_per_node)] if ranks_per_node > 1 else []
    entries += [(idx, d) for idx, d in enumerate(torus.dims)]

    best: Optional[Tuple[List[int], List[int]]] = None
    best_spread = 10**9
    n = len(entries)
    for r in range(0, n + 1):
        for combo in combinations(range(n), r):
            prod = 1
            for k in combo:
                prod *= entries[k][1]
            if prod != px:
                continue
            x_group = [entries[k][0] for k in combo]
            y_group = [entries[k][0] for k in range(n) if k not in combo]
            # Core dimension, when present, prefers the x group (fast axis).
            spread = len(x_group) * len(y_group) + (
                0 if (CORE_DIM in x_group or ranks_per_node == 1) else 1
            )
            if spread < best_spread:
                best_spread = spread
                best = (x_group, y_group)
    return best


def default_nd_placement(
    grid: ProcessGrid, torus: TorusND, ranks_per_node: int = 1
) -> NdPlacement:
    """The machine default: ranks in torus-coordinate order, cores last."""
    n = torus.num_nodes
    if grid.size > n * ranks_per_node:
        raise MappingError(
            f"{grid.size} ranks exceed {n * ranks_per_node} slots"
        )
    nodes = tuple(torus.coord_of(rank % n) for rank in range(grid.size))
    return NdPlacement(
        torus=torus, grid=grid, nodes=nodes,
        ranks_per_node=ranks_per_node, name="nd-default",
    )


def folded_nd_placement(
    grid: ProcessGrid, torus: TorusND, ranks_per_node: int = 1
) -> NdPlacement:
    """The mixed-radix folded placement (every 2-D neighbour <= 1 hop).

    Raises :class:`~repro.errors.MappingError` when the grid extents do
    not factor over the torus dimensions (e.g. a prime grid side) — the
    N-D analogue of the paper's "non-foldable" caveat.
    """
    split = split_dims_for_grid(torus, ranks_per_node, grid.px, grid.py)
    if split is None:
        raise MappingError(
            f"grid {grid.px}x{grid.py} is not foldable over torus "
            f"{torus.dims} with {ranks_per_node} ranks/node"
        )
    x_group, y_group = split
    x_extents = [
        ranks_per_node if d == CORE_DIM else torus.dims[d] for d in x_group
    ]
    y_extents = [
        ranks_per_node if d == CORE_DIM else torus.dims[d] for d in y_group
    ]

    nodes: List[NdCoord] = []
    for rank in range(grid.size):
        gx, gy = grid.position_of(rank)
        x_digits = fold_mixed_radix(gx, x_extents)
        y_digits = fold_mixed_radix(gy, y_extents)
        coord = [0] * torus.ndim
        for dim, digit in zip(x_group, x_digits):
            if dim != CORE_DIM:
                coord[dim] = digit
        for dim, digit in zip(y_group, y_digits):
            if dim != CORE_DIM:
                coord[dim] = digit
        nodes.append(tuple(coord))
    return NdPlacement(
        torus=torus, grid=grid, nodes=tuple(nodes),
        ranks_per_node=ranks_per_node, name="nd-folded",
    )


def nd_average_hops(
    placement: NdPlacement, messages: Sequence[HaloMessage]
) -> float:
    """Mean torus hops of *messages* under *placement*."""
    if not messages:
        raise MappingError("no messages to evaluate")
    return sum(
        placement.hops_between(m.src, m.dst) for m in messages
    ) / len(messages)
