"""The TXYZ mapping — the stock alternative compared in Table 4.

TXYZ enumerates the core ("T") axis fastest: all cores of node (0,0,0)
receive consecutive ranks, then all cores of node (1,0,0), and so on in
x, y, z order. On a VN-mode run this keeps *x-adjacent* virtual-topology
neighbours on the same or adjacent node (good for the fast axis) at the
price of stretching the y neighbourhood even further than XYZT.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.mapping.base import Mapping, Placement, SlotCoord, SlotSpace
from repro.runtime.backend import placement_backend
from repro.runtime.process_grid import GridRect, ProcessGrid

__all__ = ["TxyzMapping"]


class TxyzMapping(Mapping):
    """Sequential TXYZ placement (cores fastest)."""

    name = "txyz"

    def place(
        self,
        grid: ProcessGrid,
        space: SlotSpace,
        rects: Optional[Sequence[GridRect]] = None,
    ) -> Placement:
        """Rank *r* goes to node ``r // rpn`` (xyz order), core ``r % rpn``.

        *rects* is accepted for interface uniformity and ignored.
        """
        self._check_capacity(grid, space)
        torus = space.torus
        rpn = space.ranks_per_node
        if placement_backend() == "vector":
            x_dim, y_dim, _ = torus.dims
            rank = np.arange(grid.size, dtype=np.int64)
            node_idx = rank // rpn
            core = rank % rpn
            slot_arr = np.empty((grid.size, 3), dtype=np.int64)
            slot_arr[:, 0] = node_idx % x_dim
            slot_arr[:, 1] = (node_idx // x_dim) % y_dim
            slot_arr[:, 2] = (node_idx // (x_dim * y_dim)) * rpn + core
            return Placement(space=space, grid=grid, slots=slot_arr, name=self.name)
        slots: list[SlotCoord] = []
        for rank in range(grid.size):
            node_idx = rank // rpn
            core = rank % rpn
            x, y, z = torus.coord_of(node_idx)
            slots.append((x, y, z * rpn + core))
        return Placement(space=space, grid=grid, slots=tuple(slots), name=self.name)
