"""Assignment of slot-space sub-boxes to processor-grid rectangles.

The partition-aware mappings need each sibling's rectangle to land on a
*contiguous* region of the torus. Rectangles produced by Algorithm 1 form
a guillotine tiling of the processor grid, so we can recover the cut tree
(every guillotine tiling has a full-width or full-height cut separating
the rectangles into two groups) and mirror it in slot space: each cut
splits the current slot box perpendicular to one of its axes such that the
two sides' volumes equal the two groups' rank counts exactly.

When no axis admits an exact integer split (volumes not divisible by the
cross-section), the affected group keeps the whole box and its rectangles
are later filled via contiguous snake segments — locality degrades but the
mapping stays valid. The same applies to non-guillotine inputs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mapping.base import Box
from repro.errors import MappingError
from repro.runtime.process_grid import GridRect

__all__ = ["find_guillotine_cut", "assign_boxes", "BoxAssignment"]

#: rect index -> (its own Box, fold orientation), or a shared Box for a
#: group that could not be split exactly (the group's rects take snake
#: segments of the shared box).
BoxAssignment = Tuple[Dict[int, Tuple[Box, int]], Dict[int, Tuple[Box, Sequence[int]]]]


def find_guillotine_cut(
    rects: Sequence[GridRect], indices: Sequence[int]
) -> Optional[Tuple[str, int]]:
    """Find a full cut line separating *indices* into two non-empty groups.

    Returns ``("x", c)`` for a vertical line at ``x = c`` or ``("y", c)``
    for a horizontal line, or ``None`` when the sub-tiling is not
    guillotine-separable. Cuts are searched at every rectangle boundary.
    """
    xs = sorted({rects[i].x1 for i in indices})
    ys = sorted({rects[i].y1 for i in indices})
    max_x = max(rects[i].x1 for i in indices)
    max_y = max(rects[i].y1 for i in indices)
    for c in xs:
        if c == max_x:
            continue
        if all(rects[i].x1 <= c or rects[i].x0 >= c for i in indices):
            return ("x", c)
    for c in ys:
        if c == max_y:
            continue
        if all(rects[i].y1 <= c or rects[i].y0 >= c for i in indices):
            return ("y", c)
    return None


def _split_box_exact(
    box: Box, vol_left: int, axis_order: Sequence[int]
) -> Optional[Tuple[Box, Box]]:
    """Split *box* perpendicular to some axis into exact volumes.

    *axis_order* lists the axes (0=x, 1=y, 2=s) in preference order —
    partition mapping prefers slicing depth planes (Fig 6(a)) while the
    multi-level mapping prefers keeping boxes deep so folds have layers
    to work with (Fig 6(b)). Returns ``None`` when no axis gives an
    integer cut.
    """
    for ax in axis_order:
        extent = box.extents[ax]
        cross = box.volume // extent
        if vol_left % cross:
            continue
        cut = vol_left // cross
        if not (0 < cut < extent):
            continue
        if ax == 0:
            return (
                Box(box.x0, box.y0, box.s0, cut, box.h, box.d),
                Box(box.x0 + cut, box.y0, box.s0, box.w - cut, box.h, box.d),
            )
        if ax == 1:
            return (
                Box(box.x0, box.y0, box.s0, box.w, cut, box.d),
                Box(box.x0, box.y0 + cut, box.s0, box.w, box.h - cut, box.d),
            )
        return (
            Box(box.x0, box.y0, box.s0, box.w, box.h, cut),
            Box(box.x0, box.y0, box.s0 + cut, box.w, box.h, box.d - cut),
        )
    return None


def _axis_order(box: Box, prefer_depth_cut: bool) -> List[int]:
    """Axis preference for exact splits.

    ``prefer_depth_cut=True`` (partition mapping) slices depth planes
    first, then the longer horizontal axis. ``False`` (multi-level)
    cuts horizontal axes first (longest first), keeping depth for folds.
    """
    horiz = sorted((0, 1), key=lambda ax: -box.extents[ax])
    if prefer_depth_cut:
        return [2, *horiz]
    return [*horiz, 2]


def assign_boxes(
    rects: Sequence[GridRect], box: Box, *, prefer_depth_cut: bool = True
) -> BoxAssignment:
    """Assign every rectangle a contiguous slot region inside *box*.

    Returns ``(own, shared)``: ``own[i]`` is ``(rect i's private box,
    fold orientation)`` — orientations alternate across every guillotine
    cut so neighbouring partitions fold in opposite directions (the
    Fig 6(b) seam trick); ``shared[i] = (group_box, group_indices)``
    marks rect *i* as part of a group sharing ``group_box`` via snake
    segments (ordered by rectangle position).
    """
    total = sum(r.area for r in rects)
    if total != box.volume:
        raise MappingError(
            f"rectangles cover {total} ranks, box holds {box.volume} slots"
        )
    own: Dict[int, Tuple[Box, int]] = {}
    shared: Dict[int, Tuple[Box, Sequence[int]]] = {}
    _assign(rects, list(range(len(rects))), box, own, shared, prefer_depth_cut, 0)
    return own, shared


def _assign(
    rects: Sequence[GridRect],
    indices: List[int],
    box: Box,
    own: Dict[int, Tuple[Box, int]],
    shared: Dict[int, Tuple[Box, Sequence[int]]],
    prefer_depth_cut: bool,
    orientation: int,
) -> None:
    if len(indices) == 1:
        own[indices[0]] = (box, orientation)
        return
    cut = find_guillotine_cut(rects, indices)
    if cut is not None:
        axis, c = cut
        if axis == "x":
            left = [i for i in indices if rects[i].x1 <= c]
            right = [i for i in indices if rects[i].x0 >= c]
        else:
            left = [i for i in indices if rects[i].y1 <= c]
            right = [i for i in indices if rects[i].y0 >= c]
        vol_left = sum(rects[i].area for i in left)
        halves = _split_box_exact(box, vol_left, _axis_order(box, prefer_depth_cut))
        if halves is not None:
            _assign(rects, left, halves[0], own, shared, prefer_depth_cut, orientation)
            _assign(
                rects, right, halves[1], own, shared, prefer_depth_cut, orientation ^ 1
            )
            return
    # No guillotine cut or no exact box split: the whole group shares the
    # box via contiguous snake segments, ordered by grid position so
    # neighbouring rectangles get neighbouring segments.
    order = sorted(indices, key=lambda i: (rects[i].y0, rects[i].x0))
    for i in order:
        shared[i] = (box, tuple(order))
