"""Execution strategies: the WRF default vs the paper's approach.

A *strategy* turns (parent domain, sibling nests, processor grid) into an
:class:`~repro.core.scheduler.plan.ExecutionPlan` describing which ranks
run which nest:

* :class:`SequentialStrategy` — the WRF default: every nest runs on the
  full processor set, one after another.
* :class:`ParallelSiblingsStrategy` — the paper's divide-and-conquer:
  predict relative nest times, partition the grid proportionally
  (Algorithm 1), and run all siblings concurrently on their rectangles.

Plans are pure descriptions; :mod:`repro.perfsim` prices them on a
machine model.
"""

from repro.core.scheduler.plan import ExecutionPlan, SiblingAssignment
from repro.core.scheduler.strategies import (
    Strategy,
    SequentialStrategy,
    ParallelSiblingsStrategy,
)

__all__ = [
    "ExecutionPlan",
    "SiblingAssignment",
    "Strategy",
    "SequentialStrategy",
    "ParallelSiblingsStrategy",
]
