"""Grouped execution: the spectrum between sequential and fully parallel.

An extension of the paper's binary choice: split the ``k`` siblings into
``g`` *groups*; groups run one after another, siblings *within* a group
run concurrently on a partition of the grid. ``g = k`` recovers the
sequential strategy (each group is one sibling on the full grid — the
degenerate partition); ``g = 1`` recovers the fully parallel strategy.

Intermediate ``g`` is interesting when nests are so large that a ``1/k``
slice of the machine puts them deep into their scaling regime's steep
part — the regime of the paper's Fig 10 at low processor counts, where
full parallelism gains little.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.allocation.partition import partition_grid
from repro.core.scheduler.plan import ExecutionPlan, SiblingAssignment
from repro.core.scheduler.strategies import Predictor, Strategy
from repro.errors import ConfigurationError
from repro.runtime.process_grid import ProcessGrid
from repro.wrf.grid import DomainSpec

__all__ = ["GroupedStrategy", "balance_groups"]


def balance_groups(
    weights: Sequence[float], num_groups: int
) -> List[List[int]]:
    """Partition item indices into *num_groups* weight-balanced groups.

    Greedy LPT (longest processing time first): heaviest item to the
    lightest group. Groups are returned with their items in input order;
    empty groups are dropped (fewer items than groups).
    """
    if num_groups < 1:
        raise ConfigurationError("num_groups must be >= 1")
    loads = [0.0] * num_groups
    members: List[List[int]] = [[] for _ in range(num_groups)]
    for idx in sorted(range(len(weights)), key=lambda i: -weights[i]):
        g = loads.index(min(loads))
        loads[g] += weights[idx]
        members[g].append(idx)
    out = [sorted(m) for m in members if m]
    out.sort(key=lambda m: m[0])
    return out


class GroupedStrategy(Strategy):
    """Run sibling groups sequentially, siblings within a group in parallel.

    The produced :class:`~repro.core.scheduler.plan.ExecutionPlan` list
    is one plan *per group*; the caller prices them independently and
    sums the nest phases (plus a single parent step). Use
    :func:`simulate_grouped_iteration` for that bookkeeping.
    """

    name = "grouped"

    def __init__(self, num_groups: int, predictor: Optional[Predictor] = None):
        if num_groups < 1:
            raise ConfigurationError("num_groups must be >= 1")
        self.num_groups = num_groups
        self.predictor = predictor

    def plan_groups(
        self,
        grid: ProcessGrid,
        parent: DomainSpec,
        siblings: Sequence[DomainSpec],
        *,
        ratios: Optional[Sequence[float]] = None,
    ) -> List[ExecutionPlan]:
        """One concurrent plan per sibling group."""
        self._check(parent, siblings)
        if ratios is None:
            if self.predictor is not None:
                ratios = self.predictor.predict_ratios(siblings)
            else:
                ratios = [float(s.points) for s in siblings]
        weights = [
            r * s.steps_per_parent_step for r, s in zip(ratios, siblings)
        ]
        groups = balance_groups(weights, self.num_groups)

        plans: List[ExecutionPlan] = []
        for members in groups:
            group_sibs = [siblings[i] for i in members]
            group_ratios = [weights[i] for i in members]
            alloc = partition_grid(grid, group_ratios)
            plans.append(ExecutionPlan(
                grid=grid,
                parent=parent,
                assignments=tuple(
                    SiblingAssignment(s, alloc.rects[j])
                    for j, s in enumerate(group_sibs)
                ),
                concurrent=True,
                strategy=f"{self.name}[{len(groups)}]",
                ratios=tuple(alloc.ratios),
            ))
        return plans


def simulate_grouped_iteration(
    plans: Sequence[ExecutionPlan],
    machine,
    **kwargs,
) -> Tuple[float, float]:
    """Price a grouped iteration: ``(integration_time, mpi_wait)``.

    One parent step plus the sum of each group's nest phase; waits are
    rank-share weighted within each group and summed across groups.
    """
    from repro.perfsim.simulate import simulate_iteration

    if not plans:
        raise ConfigurationError("need at least one group plan")
    reports = [simulate_iteration(p, machine, **kwargs) for p in plans]
    integration = reports[0].parent.total + sum(
        r.nest_phase_time for r in reports
    )
    wait = reports[0].waits.parent + sum(
        r.waits.nests + r.waits.sync for r in reports
    )
    return integration, wait
