"""The two scheduling strategies compared throughout the paper."""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

from repro.core.allocation.partition import partition_grid
from repro.core.scheduler.plan import ExecutionPlan, SiblingAssignment
from repro.errors import ConfigurationError
from repro.runtime.process_grid import ProcessGrid
from repro.wrf.grid import DomainSpec

__all__ = ["Strategy", "SequentialStrategy", "ParallelSiblingsStrategy", "Predictor"]


class Predictor(Protocol):
    """Anything that can rank sibling nests by relative execution time."""

    def predict_ratios(self, specs: Sequence[DomainSpec]) -> Sequence[float]:
        """Normalised relative execution times, one per sibling."""
        ...


class Strategy:
    """Base class of scheduling strategies."""

    name: str = "abstract"

    def plan(
        self,
        grid: ProcessGrid,
        parent: DomainSpec,
        siblings: Sequence[DomainSpec],
    ) -> ExecutionPlan:
        """Produce an execution plan for one outer iteration."""
        raise NotImplementedError

    @staticmethod
    def _check(parent: DomainSpec, siblings: Sequence[DomainSpec]) -> None:
        if parent.is_nest:
            raise ConfigurationError("parent must be a top-level domain")
        if not siblings:
            raise ConfigurationError("need at least one sibling nest")
        for s in siblings:
            if not s.is_nest:
                raise ConfigurationError(f"{s.name!r} is not a nest")


class SequentialStrategy(Strategy):
    """The WRF default: each nest on the full processor set, in turn."""

    name = "sequential"

    def plan(
        self,
        grid: ProcessGrid,
        parent: DomainSpec,
        siblings: Sequence[DomainSpec],
    ) -> ExecutionPlan:
        """Every sibling is assigned the full grid; phases serialise."""
        self._check(parent, siblings)
        full = grid.full_rect()
        return ExecutionPlan(
            grid=grid,
            parent=parent,
            assignments=tuple(SiblingAssignment(s, full) for s in siblings),
            concurrent=False,
            strategy=self.name,
        )


class ParallelSiblingsStrategy(Strategy):
    """The paper's approach: predict, partition, run siblings concurrently.

    Parameters
    ----------
    predictor:
        A fitted performance model (or anything with ``predict_ratios``).
        When ``None``, explicit *ratios* must be passed to :meth:`plan`.
    """

    name = "parallel"

    def __init__(self, predictor: Optional[Predictor] = None):
        self.predictor = predictor

    def plan(
        self,
        grid: ProcessGrid,
        parent: DomainSpec,
        siblings: Sequence[DomainSpec],
        *,
        ratios: Optional[Sequence[float]] = None,
    ) -> ExecutionPlan:
        """Partition *grid* proportionally to predicted sibling times.

        A single sibling degenerates to the full grid (still "concurrent"
        — there is nothing to serialise against).
        """
        self._check(parent, siblings)
        if ratios is None:
            if self.predictor is None:
                raise ConfigurationError(
                    "ParallelSiblingsStrategy needs a predictor or explicit ratios"
                )
            ratios = self.predictor.predict_ratios(siblings)
        if len(ratios) != len(siblings):
            raise ConfigurationError(
                f"{len(ratios)} ratios for {len(siblings)} siblings"
            )
        # Deeper nests integrate more fine steps per outer iteration
        # (r per level), so their *phase* weight is the per-step ratio
        # scaled by the step count. For same-level siblings — every
        # configuration in the paper — this changes nothing.
        weights = [
            float(r) * s.steps_per_parent_step
            for r, s in zip(ratios, siblings)
        ]
        alloc = partition_grid(grid, weights)
        return ExecutionPlan(
            grid=grid,
            parent=parent,
            assignments=tuple(
                SiblingAssignment(s, alloc.rects[i]) for i, s in enumerate(siblings)
            ),
            concurrent=True,
            strategy=self.name,
            ratios=tuple(alloc.ratios),
        )
