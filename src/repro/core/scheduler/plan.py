"""Execution plans: the schedulable description of a nested run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.wrf.grid import DomainSpec

__all__ = ["SiblingAssignment", "ExecutionPlan"]


@dataclass(frozen=True)
class SiblingAssignment:
    """One sibling nest and the processor rectangle it runs on."""

    domain: DomainSpec
    rect: GridRect

    @property
    def processors(self) -> int:
        """Number of ranks allocated."""
        return self.rect.area


@dataclass(frozen=True)
class ExecutionPlan:
    """A complete schedule of one outer iteration.

    Attributes
    ----------
    grid:
        The virtual processor grid (the parent always uses all of it).
    parent:
        The coarse parent domain.
    assignments:
        Per-sibling processor rectangles. Under the sequential strategy
        every rectangle is the full grid and siblings run one after
        another; under the parallel strategy the rectangles are disjoint
        and siblings run concurrently.
    concurrent:
        Whether sibling nest phases overlap in time.
    strategy:
        Producing strategy's name, for reports.
    ratios:
        The predicted execution-time ratios that drove the allocation
        (``None`` for the sequential plan).
    """

    grid: ProcessGrid
    parent: DomainSpec
    assignments: Tuple[SiblingAssignment, ...]
    concurrent: bool
    strategy: str
    ratios: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.parent.is_nest:
            raise ConfigurationError("plan parent must be a top-level domain")
        for a in self.assignments:
            if a.rect.x1 > self.grid.px or a.rect.y1 > self.grid.py:
                raise ConfigurationError(
                    f"assignment rect {a.rect} exceeds grid {self.grid.shape}"
                )
        if self.concurrent:
            rects = [a.rect for a in self.assignments]
            for i, r in enumerate(rects):
                for s in rects[i + 1 :]:
                    if r.overlaps(s):
                        raise ConfigurationError(
                            "concurrent plan has overlapping rectangles"
                        )

    # ------------------------------------------------------------------
    @property
    def num_siblings(self) -> int:
        """Number of sibling nests."""
        return len(self.assignments)

    @property
    def sibling_domains(self) -> Tuple[DomainSpec, ...]:
        """The sibling nest specs in plan order."""
        return tuple(a.domain for a in self.assignments)

    @property
    def rects(self) -> Tuple[GridRect, ...]:
        """The per-sibling rectangles in plan order."""
        return tuple(a.rect for a in self.assignments)

    def covered_positions(self) -> Tuple[int, ...]:
        """Multiset of grid positions claimed by sibling rectangles.

        Returns one linear position id (``py * Px + px``) per rectangle
        cell, duplicates included — a concurrent plan is rank-conserving
        exactly when these ids are pairwise distinct. Kept independent of
        ``__post_init__`` validation so verification oracles can re-check
        plans that were corrupted after construction.
        """
        ids = []
        for a in self.assignments:
            for px, py in a.rect.positions():
                ids.append(py * self.grid.px + px)
        return tuple(ids)

    def describe(self) -> str:
        """Human-readable one-plan summary."""
        lines = [
            f"plan[{self.strategy}] grid={self.grid.px}x{self.grid.py} "
            f"parent={self.parent.nx}x{self.parent.ny} "
            f"({'concurrent' if self.concurrent else 'sequential'})"
        ]
        for a in self.assignments:
            lines.append(
                f"  {a.domain.name}: {a.domain.nx}x{a.domain.ny} "
                f"-> {a.rect.width}x{a.rect.height} @ ({a.rect.x0},{a.rect.y0}) "
                f"[{a.processors} procs]"
            )
        return "\n".join(lines)
