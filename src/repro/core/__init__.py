"""The paper's primary contribution.

Three cooperating pieces (paper Sec 3):

* :mod:`repro.core.prediction` — Delaunay/barycentric performance model
  predicting relative nest execution times from (aspect ratio, points).
* :mod:`repro.core.allocation` — Huffman-tree-driven recursive bisection of
  the 2-D processor grid into per-sibling rectangles (Algorithm 1).
* :mod:`repro.core.mapping` — 2D->3D torus mapping heuristics
  (topology-oblivious, TXYZ, partition mapping, multi-level folding).
* :mod:`repro.core.scheduler` — strategies tying it together: the WRF
  default sequential execution and the paper's parallel-siblings plan.
"""

from repro.core.prediction import PerformanceModel, NaivePointsModel
from repro.core.allocation import (
    HuffmanTree,
    partition_grid,
    naive_strip_partition,
    equal_partition,
)
from repro.core.mapping import (
    Mapping,
    SlotSpace,
    ObliviousMapping,
    TxyzMapping,
    PartitionMapping,
    MultiLevelMapping,
)
from repro.core.scheduler import (
    ExecutionPlan,
    SequentialStrategy,
    ParallelSiblingsStrategy,
)

__all__ = [
    "PerformanceModel",
    "NaivePointsModel",
    "HuffmanTree",
    "partition_grid",
    "naive_strip_partition",
    "equal_partition",
    "Mapping",
    "SlotSpace",
    "ObliviousMapping",
    "TxyzMapping",
    "PartitionMapping",
    "MultiLevelMapping",
    "ExecutionPlan",
    "SequentialStrategy",
    "ParallelSiblingsStrategy",
]
