"""Barycentric interpolation inside a triangle (paper Eqs 1-4).

Given a triangle with vertices :math:`A(x_1,y_1), B(x_2,y_2), C(x_3,y_3)`
and a point :math:`P(x,y)` inside it, the barycentric coordinates are

.. math::

    \\lambda_1 = \\frac{(y_2-y_3)(x-x_3) + (x_3-x_2)(y-y_3)}{D}, \\quad
    \\lambda_2 = \\frac{(y_3-y_1)(x-x_3) + (x_1-x_3)(y-y_3)}{D}

with :math:`D = (y_2-y_3)(x_1-x_3) + (x_3-x_2)(y_1-y_3)`, and

.. math:: \\lambda_3 = 1 - \\lambda_1 - \\lambda_2.

Note: the paper's Eq (3) prints ":math:`\\lambda_3 = \\lambda_1 -
\\lambda_2`", a typo — barycentric coordinates must sum to one (that is
what makes the interpolant reproduce linear functions exactly, which the
property tests verify). We implement the correct identity.

The predicted time is :math:`T_D = \\lambda_1 T_A + \\lambda_2 T_B +
\\lambda_3 T_C` (Eq 4).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import GeometryError

__all__ = ["barycentric_coordinates", "barycentric_batch", "interpolate"]

Point = Tuple[float, float]


def barycentric_coordinates(
    p: Point, a: Point, b: Point, c: Point
) -> Tuple[float, float, float]:
    """Barycentric coordinates of *p* with respect to triangle *abc*.

    Raises :class:`~repro.errors.GeometryError` for a degenerate
    (zero-area) triangle. Coordinates may be negative when *p* lies
    outside the triangle; they always sum to exactly 1 up to rounding.
    """
    x, y = p
    x1, y1 = a
    x2, y2 = b
    x3, y3 = c
    denom = (y2 - y3) * (x1 - x3) + (x3 - x2) * (y1 - y3)
    if denom == 0.0:
        raise GeometryError(f"degenerate triangle {a}, {b}, {c}")
    l1 = ((y2 - y3) * (x - x3) + (x3 - x2) * (y - y3)) / denom
    l2 = ((y3 - y1) * (x - x3) + (x1 - x3) * (y - y3)) / denom
    l3 = 1.0 - l1 - l2  # the corrected Eq (3)
    return (l1, l2, l3)


def barycentric_batch(
    p: np.ndarray, a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`barycentric_coordinates` over point rows.

    *p*, *a*, *b*, *c* are ``(n, 2)`` arrays (one triangle per query
    point). The float expressions mirror the scalar path exactly, so
    each row is bit-identical to the corresponding scalar call.
    """
    x, y = p[:, 0], p[:, 1]
    x1, y1 = a[:, 0], a[:, 1]
    x2, y2 = b[:, 0], b[:, 1]
    x3, y3 = c[:, 0], c[:, 1]
    denom = (y2 - y3) * (x1 - x3) + (x3 - x2) * (y1 - y3)
    if np.any(denom == 0.0):
        i = int(np.nonzero(denom == 0.0)[0][0])
        raise GeometryError(
            f"degenerate triangle {tuple(a[i])}, {tuple(b[i])}, {tuple(c[i])}"
        )
    l1 = ((y2 - y3) * (x - x3) + (x3 - x2) * (y - y3)) / denom
    l2 = ((y3 - y1) * (x - x3) + (x1 - x3) * (y - y3)) / denom
    l3 = 1.0 - l1 - l2  # the corrected Eq (3)
    return (l1, l2, l3)


def interpolate(
    p: Point,
    vertices: Sequence[Point],
    values: Sequence[float],
) -> float:
    """Eq (4): interpolate *values* given at triangle *vertices* to *p*."""
    if len(vertices) != 3 or len(values) != 3:
        raise GeometryError(
            f"need exactly 3 vertices and values, got {len(vertices)}/{len(values)}"
        )
    l1, l2, l3 = barycentric_coordinates(p, vertices[0], vertices[1], vertices[2])
    return l1 * values[0] + l2 * values[1] + l3 * values[2]
