"""The naive univariate baseline model.

"A naive approach is to assume that execution times are proportional to
the number of points in the domain. However, our experiments indicate
that a simple univariate linear model based on this feature results in
more than 19% prediction errors." (paper Sec 3.1)

The model is ``time = c * points`` with *c* fitted by least squares
through the origin. It cannot distinguish a 200x400 domain from a 400x200
one even though their x/y communication volumes differ — the failure mode
the paper's aspect-ratio feature fixes.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.prediction.model import ProfiledDomain
from repro.errors import PredictionError
from repro.wrf.grid import DomainSpec

__all__ = ["NaivePointsModel"]


class NaivePointsModel:
    """``time = c * points`` fitted through the origin."""

    def __init__(self, profiled: Sequence[ProfiledDomain]):
        if not profiled:
            raise PredictionError("need at least one profiled domain")
        num = sum(p.points * p.time for p in profiled)
        den = sum(p.points * p.points for p in profiled)
        if den <= 0:
            raise PredictionError("profiled domains have no points")
        self._coeff = num / den

    @classmethod
    def from_measurements(
        cls, domains: Sequence[DomainSpec], times: Sequence[float]
    ) -> "NaivePointsModel":
        """Fit from parallel sequences of domains and measured times."""
        if len(domains) != len(times):
            raise PredictionError(f"{len(domains)} domains but {len(times)} times")
        return cls(
            [ProfiledDomain.from_domain(d, t) for d, t in zip(domains, times)]
        )

    @property
    def coefficient(self) -> float:
        """Seconds per domain point."""
        return self._coeff

    def predict_features(self, aspect: float, points: float) -> float:
        """Predict from features (*aspect* is ignored — that is the point)."""
        if points <= 0:
            raise PredictionError(f"points must be positive, got {points}")
        return self._coeff * points

    def predict(self, spec: DomainSpec) -> float:
        """Predict the step time of a domain."""
        return self.predict_features(spec.aspect_ratio, float(spec.points))

    def predict_features_batch(
        self, aspects: Sequence[float], points: Sequence[float]
    ) -> np.ndarray:
        """Vectorized :meth:`predict_features` (aspect is still ignored)."""
        a_raw = np.asarray(aspects, dtype=float)
        p_raw = np.asarray(points, dtype=float)
        if a_raw.shape != p_raw.shape or a_raw.ndim != 1:
            raise PredictionError(
                f"feature arrays must be 1-D and congruent, got shapes "
                f"{a_raw.shape} and {p_raw.shape}"
            )
        bad = p_raw <= 0
        if bad.any():
            i = int(np.nonzero(bad)[0][0])
            raise PredictionError(f"points must be positive, got {p_raw[i]}")
        return self._coeff * p_raw

    def predict_batch(self, specs: Sequence[DomainSpec]) -> np.ndarray:
        """Predict step times for many domains in one vectorized pass."""
        return self.predict_features_batch(
            [s.aspect_ratio for s in specs], [float(s.points) for s in specs]
        )

    def predict_ratios(self, specs: Sequence[DomainSpec]) -> List[float]:
        """Normalised relative times (proportional to point counts)."""
        times = [self.predict(s) for s in specs]
        total = sum(times)
        return [t / total for t in times]
