"""Performance prediction of nested simulations (paper Sec 3.1).

Execution time of a nest is predicted by piecewise-linear interpolation
over the 2-D feature space *(aspect ratio, total points)*:

1. a small basis set (13 domains in the paper) is profiled once,
2. the basis points are Delaunay-triangulated
   (:mod:`~repro.core.prediction.delaunay`, a from-scratch Bowyer-Watson
   implementation),
3. a query domain falls inside one triangle and its time is the
   barycentric combination of the triangle's vertex times
   (:mod:`~repro.core.prediction.barycentric`),
4. queries outside the basis hull are scaled down into the covered
   region; the result scales back, preserving *relative* times, which is
   all the allocator needs.

The naive baseline the paper reports >19% error for — time proportional
to the point count alone — is in :mod:`~repro.core.prediction.naive`.
"""

from repro.core.prediction.delaunay import Triangulation, delaunay_triangulation
from repro.core.prediction.barycentric import (
    barycentric_batch,
    barycentric_coordinates,
    interpolate,
)
from repro.core.prediction.model import PerformanceModel, ProfiledDomain
from repro.core.prediction.naive import NaivePointsModel
from repro.core.prediction.basis import select_basis, generate_candidates

__all__ = [
    "Triangulation",
    "delaunay_triangulation",
    "barycentric_batch",
    "barycentric_coordinates",
    "interpolate",
    "PerformanceModel",
    "ProfiledDomain",
    "NaivePointsModel",
    "select_basis",
    "generate_candidates",
]
