"""Delaunay triangulation from scratch (Bowyer-Watson).

The paper triangulates the convex hull of its 13 profiled basis points
with a Delaunay triangulation (Fig 3(a)) — the triangulation maximising
the minimum angle, which keeps the piecewise-linear interpolant
well-conditioned. We implement the incremental Bowyer-Watson algorithm:

1. start from a "super-triangle" enclosing all points,
2. insert points one at a time; collect the triangles whose circumcircle
   contains the new point (the *cavity*), remove them, and re-triangulate
   the cavity boundary against the new point,
3. finally drop every triangle touching the super-triangle.

The empty-circumcircle invariant is property-tested against
``scipy.spatial.Delaunay`` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import GeometryError

__all__ = ["Triangle", "Triangulation", "delaunay_triangulation"]

Point = Tuple[float, float]

#: Relative threshold below which float predicates fall back to exact
#: rational arithmetic (floats convert to Fraction losslessly).
_EXACT_THRESHOLD = 1e-10


def _orient2d(a: Point, b: Point, c: Point) -> float:
    """Twice the signed area of triangle abc (positive = counter-clockwise).

    Near-degenerate cases are resolved with exact rational arithmetic so
    the incremental construction never mis-classifies a sliver — the
    failure mode that leaves holes in the triangulation.
    """
    det = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
    scale = (
        abs(b[0] - a[0]) + abs(c[1] - a[1]) + abs(b[1] - a[1]) + abs(c[0] - a[0])
    )
    if abs(det) > _EXACT_THRESHOLD * max(scale * scale, 1e-300):
        return det
    ax, ay = Fraction(a[0]), Fraction(a[1])
    bx, by = Fraction(b[0]), Fraction(b[1])
    cx, cy = Fraction(c[0]), Fraction(c[1])
    exact = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
    if exact > 0:
        return 1.0
    if exact < 0:
        return -1.0
    return 0.0


@dataclass(frozen=True)
class Triangle:
    """A triangle as indices into the point list, stored CCW."""

    a: int
    b: int
    c: int

    def vertices(self) -> Tuple[int, int, int]:
        """The three vertex indices."""
        return (self.a, self.b, self.c)

    def edges(self) -> List[Tuple[int, int]]:
        """The three edges with canonically ordered endpoints."""
        pairs = [(self.a, self.b), (self.b, self.c), (self.c, self.a)]
        return [(min(u, v), max(u, v)) for u, v in pairs]


def _circumcircle_contains(pts: Sequence[Point], tri: Triangle, p: Point) -> bool:
    """In-circle predicate: is *p* strictly inside tri's circumcircle?

    Uses the standard 3x3 determinant with the lifted coordinates (the
    triangle must be counter-clockwise for the sign convention), falling
    back to exact rational arithmetic for near-cocircular cases.
    """
    ax, ay = pts[tri.a]
    bx, by = pts[tri.b]
    cx, cy = pts[tri.c]
    dx, dy = p
    adx, ady = ax - dx, ay - dy
    bdx, bdy = bx - dx, by - dy
    cdx, cdy = cx - dx, cy - dy
    det = (
        (adx * adx + ady * ady) * (bdx * cdy - cdx * bdy)
        - (bdx * bdx + bdy * bdy) * (adx * cdy - cdx * ady)
        + (cdx * cdx + cdy * cdy) * (adx * bdy - bdx * ady)
    )
    scale = (
        (adx * adx + ady * ady)
        + (bdx * bdx + bdy * bdy)
        + (cdx * cdx + cdy * cdy)
    )
    if abs(det) > _EXACT_THRESHOLD * max(scale * scale, 1e-300):
        return det > 0.0
    fadx, fady = Fraction(ax) - Fraction(dx), Fraction(ay) - Fraction(dy)
    fbdx, fbdy = Fraction(bx) - Fraction(dx), Fraction(by) - Fraction(dy)
    fcdx, fcdy = Fraction(cx) - Fraction(dx), Fraction(cy) - Fraction(dy)
    exact = (
        (fadx * fadx + fady * fady) * (fbdx * fcdy - fcdx * fbdy)
        - (fbdx * fbdx + fbdy * fbdy) * (fadx * fcdy - fcdx * fady)
        + (fcdx * fcdx + fcdy * fcdy) * (fadx * fbdy - fbdx * fady)
    )
    return exact > 0


@dataclass
class Triangulation:
    """The result: the input points and the triangle list."""

    points: List[Point]
    triangles: List[Triangle]

    def locate(self, p: Point, *, eps: float = 1e-9) -> Triangle | None:
        """The triangle containing *p* (inclusive of edges), or None.

        Brute force over triangles — the basis sets here are tiny (13
        points, ~16 triangles), so a point-location structure would be
        pure overhead.
        """
        for tri in self.triangles:
            a, b, c = (self.points[i] for i in tri.vertices())
            d1 = _orient2d(a, b, p)
            d2 = _orient2d(b, c, p)
            d3 = _orient2d(c, a, p)
            if d1 >= -eps and d2 >= -eps and d3 >= -eps:
                return tri
        return None

    def locate_batch(self, pts: np.ndarray, *, eps: float = 1e-9) -> np.ndarray:
        """Triangle index for each row of *pts*, ``-1`` when outside.

        Vectorized point-in-triangle over the whole query array at once,
        **bit-identical** to calling :meth:`locate` per point: triangles
        are scanned in list order (first match wins), the orientation
        determinants use the same float expressions, and any point whose
        determinant falls inside the exact-arithmetic fallback band of
        :func:`_orient2d` is resolved by the scalar path, so the rational
        tie-breaking never diverges between the two.
        """
        arr = np.asarray(pts, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GeometryError(
                f"locate_batch expects an (n, 2) array, got shape {arr.shape}"
            )
        n = arr.shape[0]
        out = np.full(n, -1, dtype=np.intp)
        if n == 0:
            return out
        x, y = arr[:, 0], arr[:, 1]
        suspect = np.zeros(n, dtype=bool)
        unresolved = np.arange(n)

        def orient(a: Point, b: Point, px: np.ndarray, py: np.ndarray):
            # Same expressions as _orient2d's fast path, elementwise.
            det = (b[0] - a[0]) * (py - a[1]) - (b[1] - a[1]) * (px - a[0])
            scale = (
                abs(b[0] - a[0]) + np.abs(py - a[1])
                + abs(b[1] - a[1]) + np.abs(px - a[0])
            )
            near = np.abs(det) <= _EXACT_THRESHOLD * np.maximum(
                scale * scale, 1e-300
            )
            return det, near

        for ti, tri in enumerate(self.triangles):
            if unresolved.size == 0:
                break
            a, b, c = (self.points[i] for i in tri.vertices())
            px, py = x[unresolved], y[unresolved]
            d1, n1 = orient(a, b, px, py)
            d2, n2 = orient(b, c, px, py)
            d3, n3 = orient(c, a, px, py)
            near = n1 | n2 | n3
            if near.any():
                # Defer the whole point to the scalar path: the exact
                # predicate may flip this verdict, and first-match
                # ordering means a flip here changes the answer.
                suspect[unresolved[near]] = True
                keep = ~near
                unresolved = unresolved[keep]
                d1, d2, d3 = d1[keep], d2[keep], d3[keep]
            inside = (d1 >= -eps) & (d2 >= -eps) & (d3 >= -eps)
            out[unresolved[inside]] = ti
            unresolved = unresolved[~inside]

        for i in np.nonzero(suspect)[0]:
            tri = self.locate((float(x[i]), float(y[i])), eps=eps)
            out[i] = -1 if tri is None else self.triangles.index(tri)
        return out

    def contains(self, p: Point) -> bool:
        """Whether *p* lies in the triangulated region (the convex hull)."""
        return self.locate(p) is not None

    def edge_set(self) -> set[Tuple[int, int]]:
        """All undirected edges."""
        out: set[Tuple[int, int]] = set()
        for t in self.triangles:
            out.update(t.edges())
        return out


def delaunay_triangulation(points: Sequence[Point]) -> Triangulation:
    """Bowyer-Watson Delaunay triangulation of *points*.

    Requires at least 3 points not all collinear; duplicate points are
    rejected (the basis selector never produces them).
    """
    pts = [(float(x), float(y)) for x, y in points]
    if len(pts) < 3:
        raise GeometryError(f"need at least 3 points, got {len(pts)}")
    if len(set(pts)) != len(pts):
        raise GeometryError("duplicate points in triangulation input")

    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    span = max(max(xs) - min(xs), max(ys) - min(ys), 1e-12)
    cx = (max(xs) + min(xs)) / 2.0
    cy = (max(ys) + min(ys)) / 2.0
    # The super-triangle must lie outside the circumcircle of every real
    # triangle, whose radius blows up as 1/sin(min angle) for
    # near-collinear hull triples. A 1e9-span margin covers hull triples
    # collinear to one part in ~1e9; the exact rational predicates keep
    # the arithmetic robust at this scale. (Points *more* collinear than
    # that could still produce boundary slivers — far beyond anything the
    # dispersion-selected basis sets can contain.)
    m = 1e9 * span
    # Super-triangle vertices appended after the real points.
    n = len(pts)
    work = pts + [(cx - m, cy - m), (cx + m, cy - m), (cx, cy + m)]
    sa, sb, sc = n, n + 1, n + 2

    def ccw(i: int, j: int, k: int) -> Triangle:
        if _orient2d(work[i], work[j], work[k]) < 0.0:
            j, k = k, j
        return Triangle(i, j, k)

    triangles: List[Triangle] = [ccw(sa, sb, sc)]

    for idx in range(n):
        p = work[idx]
        bad = [t for t in triangles if _circumcircle_contains(work, t, p)]
        if not bad:
            # Point exactly on an edge/cocircular boundary: fall back to
            # the containing triangle so insertion still proceeds.
            container = None
            for t in triangles:
                a, b, c = (work[i] for i in t.vertices())
                if (
                    _orient2d(a, b, p) >= 0
                    and _orient2d(b, c, p) >= 0
                    and _orient2d(c, a, p) >= 0
                ):
                    container = t
                    break
            if container is None:
                raise GeometryError(f"failed to locate cavity for point {p}")
            bad = [container]
        # Cavity boundary: edges appearing in exactly one bad triangle.
        edge_count: dict[Tuple[int, int], int] = {}
        for t in bad:
            for e in t.edges():
                edge_count[e] = edge_count.get(e, 0) + 1
        boundary = [e for e, cnt in edge_count.items() if cnt == 1]
        triangles = [t for t in triangles if t not in bad]
        for u, v in boundary:
            if _orient2d(work[u], work[v], p) == 0.0:
                continue  # collinear sliver; skip
            triangles.append(ccw(u, v, idx))

    # Remove triangles that touch the super-triangle.
    result = [
        t
        for t in triangles
        if all(v < n for v in t.vertices())
    ]
    if not result:
        raise GeometryError(
            "triangulation is empty — input points are collinear"
        )
    return Triangulation(points=pts, triangles=result)
