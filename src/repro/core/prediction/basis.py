"""Basis-set selection for the performance model.

The paper randomly generated "a large number" of candidate domains with
sizes 94x124 .. 415x445 and aspect ratios 0.5-1.5, then manually selected
13 that "nicely cover the rectangular region" spanned by the extremes and
"could be triangulated well". We automate the manual step with a greedy
maximin-dispersion pick over the *normalised* feature rectangle, seeded
with the four corners of the candidate cloud so the convex hull covers as
much of the query region as possible.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import PredictionError
from repro.util.rng import SeedLike, make_rng
from repro.wrf.grid import DomainSpec

__all__ = ["generate_candidates", "select_basis"]

#: The paper's candidate ranges (Sec 3.1 / 4.1.2).
MIN_SIZE = (94, 124)
MAX_SIZE = (415, 445)
ASPECT_RANGE = (0.5, 1.5)
BASIS_SIZE = 13


def generate_candidates(
    count: int,
    *,
    seed: SeedLike = None,
    min_points: int | None = None,
    max_points: int | None = None,
    aspect_range: Tuple[float, float] = ASPECT_RANGE,
) -> List[DomainSpec]:
    """Random nest-domain candidates in the paper's ranges.

    Each candidate draws an aspect ratio and a point count uniformly and
    solves for ``nx = sqrt(points * aspect)``, ``ny = nx / aspect``.
    """
    if count <= 0:
        raise PredictionError(f"count must be positive, got {count}")
    rng = make_rng(seed)
    lo = min_points if min_points is not None else MIN_SIZE[0] * MIN_SIZE[1]
    hi = max_points if max_points is not None else MAX_SIZE[0] * MAX_SIZE[1]
    a_lo, a_hi = aspect_range
    out: List[DomainSpec] = []
    for i in range(count):
        aspect = rng.uniform(a_lo, a_hi)
        points = rng.uniform(lo, hi)
        nx = max(4, round((points * aspect) ** 0.5))
        ny = max(4, round(nx / aspect))
        out.append(
            DomainSpec(
                name=f"cand{i:04d}",
                nx=nx,
                ny=ny,
                dx_km=8.0,
                parent="synthetic",
                parent_start=(0, 0),
                refinement=3,
                level=1,
            )
        )
    return out


def _normalised_features(domains: Sequence[DomainSpec]) -> List[Tuple[float, float]]:
    aspects = [d.aspect_ratio for d in domains]
    points = [float(d.points) for d in domains]
    a_lo, a_hi = min(aspects), max(aspects)
    p_lo, p_hi = min(points), max(points)
    a_span = max(a_hi - a_lo, 1e-12)
    p_span = max(p_hi - p_lo, 1e-12)
    return [
        ((a - a_lo) / a_span, (p - p_lo) / p_span)
        for a, p in zip(aspects, points)
    ]


def select_basis(
    candidates: Sequence[DomainSpec], size: int = BASIS_SIZE
) -> List[DomainSpec]:
    """Pick *size* well-spread candidates (greedy maximin dispersion).

    Seeds the selection with the candidates nearest the four corners of
    the normalised feature rectangle, then repeatedly adds the candidate
    farthest from the current set. The result covers the feature region
    and triangulates without slivers.
    """
    if size < 3:
        raise PredictionError(f"basis needs at least 3 domains, got {size}")
    if len(candidates) < size:
        raise PredictionError(
            f"need at least {size} candidates, got {len(candidates)}"
        )
    feats = _normalised_features(candidates)

    chosen: List[int] = []

    def add_nearest_to(target: Tuple[float, float]) -> None:
        best, best_d = -1, float("inf")
        for i, f in enumerate(feats):
            if i in chosen:
                continue
            d = (f[0] - target[0]) ** 2 + (f[1] - target[1]) ** 2
            if d < best_d:
                best, best_d = i, d
        chosen.append(best)

    for corner in ((0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)):
        add_nearest_to(corner)

    while len(chosen) < size:
        best, best_d = -1, -1.0
        for i, f in enumerate(feats):
            if i in chosen:
                continue
            d = min(
                (f[0] - feats[j][0]) ** 2 + (f[1] - feats[j][1]) ** 2
                for j in chosen
            )
            if d > best_d:
                best, best_d = i, d
        chosen.append(best)

    return [candidates[i] for i in chosen]
