"""The Delaunay/barycentric performance model (paper Sec 3.1).

Fit once from a small set of profiled domains (13 in the paper), then
predict the execution time of any nest from its *(aspect ratio, points)*
features. Features are normalised to the unit square before triangulation
— aspect ratios span ~1 unit while point counts span ~10^5, so
triangulating raw features would produce degenerate slivers.

Out-of-hull queries are **scaled down into the covered region** along the
point axis (the paper: "for larger domains ... we scale down to the region
of coverage and then interpolate"; time scales back linearly with the
point ratio, preserving relative times) and clamped along the aspect axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.prediction.barycentric import barycentric_batch, interpolate
from repro.core.prediction.delaunay import Triangulation, delaunay_triangulation
from repro.errors import PredictionError
from repro.wrf.grid import DomainSpec

__all__ = ["ProfiledDomain", "PerformanceModel"]


@dataclass(frozen=True)
class ProfiledDomain:
    """One profiling observation: a domain and its measured step time."""

    aspect: float
    points: float
    time: float

    @classmethod
    def from_domain(cls, spec: DomainSpec, time: float) -> "ProfiledDomain":
        """Build from a :class:`~repro.wrf.grid.DomainSpec` and a time."""
        if time <= 0:
            raise PredictionError(f"profiled time must be positive, got {time}")
        return cls(aspect=spec.aspect_ratio, points=float(spec.points), time=time)


class PerformanceModel:
    """Piecewise-linear interpolation over (aspect ratio, points)."""

    def __init__(self, profiled: Sequence[ProfiledDomain]):
        if len(profiled) < 3:
            raise PredictionError(
                f"need at least 3 profiled domains, got {len(profiled)}"
            )
        self._profiled = list(profiled)
        aspects = [p.aspect for p in profiled]
        points = [p.points for p in profiled]
        self._a_lo, self._a_hi = min(aspects), max(aspects)
        self._p_lo, self._p_hi = min(points), max(points)
        if self._a_hi <= self._a_lo or self._p_hi <= self._p_lo:
            raise PredictionError("profiled domains are degenerate in a feature")
        self._tri: Triangulation = delaunay_triangulation(
            [self._normalise(p.aspect, p.points) for p in profiled]
        )
        self._times = [p.time for p in profiled]
        # Dense views for the batched path, built lazily on first use
        # (the triangulation is immutable after construction).
        self._batch_views: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, float, float]
        ] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_measurements(
        cls, domains: Sequence[DomainSpec], times: Sequence[float]
    ) -> "PerformanceModel":
        """Fit from parallel sequences of domains and measured times."""
        if len(domains) != len(times):
            raise PredictionError(
                f"{len(domains)} domains but {len(times)} times"
            )
        return cls([ProfiledDomain.from_domain(d, t) for d, t in zip(domains, times)])

    # ------------------------------------------------------------------
    def _normalise(self, aspect: float, points: float) -> Tuple[float, float]:
        return (
            (aspect - self._a_lo) / (self._a_hi - self._a_lo),
            (points - self._p_lo) / (self._p_hi - self._p_lo),
        )

    @property
    def triangulation(self) -> Triangulation:
        """The underlying normalised-feature triangulation (Fig 3(a))."""
        return self._tri

    @property
    def num_basis(self) -> int:
        """Number of profiled basis domains."""
        return len(self._profiled)

    # ------------------------------------------------------------------
    def predict_features(self, aspect: float, points: float) -> float:
        """Predict the step time for raw features."""
        if aspect <= 0 or points <= 0:
            raise PredictionError(
                f"features must be positive, got aspect={aspect}, points={points}"
            )
        # Clamp aspect into the covered band (aspect extrapolation is
        # second-order; the paper's queries stay within 0.5-1.5).
        a = min(max(aspect, self._a_lo), self._a_hi)

        # Scale the point count into coverage, remembering the factor.
        scale = 1.0
        pts = points
        if pts > self._p_hi:
            scale = pts / self._p_hi
            pts = self._p_hi
        elif pts < self._p_lo:
            scale = pts / self._p_lo
            pts = self._p_lo

        p = self._normalise(a, pts)
        tri = self._tri.locate(p)
        if tri is None:
            # Inside the bounding box but outside the hull: nudge toward
            # the basis centroid until covered (bounded iterations).
            cx = sum(q[0] for q in self._tri.points) / len(self._tri.points)
            cy = sum(q[1] for q in self._tri.points) / len(self._tri.points)
            q = p
            for _ in range(60):
                q = (0.9 * q[0] + 0.1 * cx, 0.9 * q[1] + 0.1 * cy)
                tri = self._tri.locate(q)
                if tri is not None:
                    break
            if tri is None:
                raise PredictionError(
                    f"query features {aspect, points} outside model coverage"
                )
            p = q
        verts = [self._tri.points[i] for i in tri.vertices()]
        vals = [self._times[i] for i in tri.vertices()]
        return scale * interpolate(p, verts, vals)

    def predict(self, spec: DomainSpec) -> float:
        """Predict the step time of a domain."""
        return self.predict_features(spec.aspect_ratio, float(spec.points))

    # ----------------------------------------------------------- batched
    def _views(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float, float]:
        if self._batch_views is None:
            verts = np.array(
                [t.vertices() for t in self._tri.triangles], dtype=np.intp
            )
            pts = np.asarray(self._tri.points, dtype=float)
            times = np.asarray(self._times, dtype=float)
            # Python left-to-right float sums, exactly as the scalar
            # out-of-hull nudge computes the centroid.
            cx = sum(q[0] for q in self._tri.points) / len(self._tri.points)
            cy = sum(q[1] for q in self._tri.points) / len(self._tri.points)
            self._batch_views = (verts, pts, times, cx, cy)
        return self._batch_views

    def predict_features_batch(
        self, aspects: Sequence[float], points: Sequence[float]
    ) -> np.ndarray:
        """Predict step times for many raw feature pairs in one pass.

        Vectorized clamp/scale/normalise, one point-location sweep over
        the triangulation (:meth:`Triangulation.locate_batch`), and
        array barycentric interpolation. Bit-identical to a loop of
        :meth:`predict_features` calls — the scalar path is the parity
        oracle, enforced by the test suite.
        """
        a_raw = np.asarray(aspects, dtype=float)
        p_raw = np.asarray(points, dtype=float)
        if a_raw.shape != p_raw.shape or a_raw.ndim != 1:
            raise PredictionError(
                f"feature arrays must be 1-D and congruent, got shapes "
                f"{a_raw.shape} and {p_raw.shape}"
            )
        if a_raw.size == 0:
            return np.empty(0, dtype=float)
        bad = (a_raw <= 0) | (p_raw <= 0)
        if bad.any():
            i = int(np.nonzero(bad)[0][0])
            raise PredictionError(
                f"features must be positive, got aspect={a_raw[i]}, "
                f"points={p_raw[i]}"
            )

        # Clamp aspect into the covered band; scale points into coverage,
        # remembering the factor (same element ops as the scalar path).
        a = np.minimum(np.maximum(a_raw, self._a_lo), self._a_hi)
        pts = p_raw.copy()
        scale = np.ones_like(pts)
        hi = pts > self._p_hi
        scale[hi] = pts[hi] / self._p_hi
        pts[hi] = self._p_hi
        lo = pts < self._p_lo
        scale[lo] = pts[lo] / self._p_lo
        pts[lo] = self._p_lo

        qx = (a - self._a_lo) / (self._a_hi - self._a_lo)
        qy = (pts - self._p_lo) / (self._p_hi - self._p_lo)
        q = np.column_stack([qx, qy])
        tri_idx = self._tri.locate_batch(q)

        verts, tri_pts, times, cx, cy = self._views()
        missing = np.nonzero(tri_idx < 0)[0]
        if missing.size:
            # Inside the bounding box but outside the hull: nudge toward
            # the basis centroid until covered (bounded iterations),
            # exactly mirroring the scalar loop per point.
            mq = q[missing].copy()
            still = np.arange(missing.size)
            for _ in range(60):
                if still.size == 0:
                    break
                mq[still, 0] = 0.9 * mq[still, 0] + 0.1 * cx
                mq[still, 1] = 0.9 * mq[still, 1] + 0.1 * cy
                located = self._tri.locate_batch(mq[still])
                found = located >= 0
                hit = still[found]
                tri_idx[missing[hit]] = located[found]
                q[missing[hit]] = mq[hit]
                still = still[~found]
            if still.size:
                i = int(missing[still[0]])
                raise PredictionError(
                    f"query features {float(a_raw[i]), float(p_raw[i])} "
                    f"outside model coverage"
                )

        tv = verts[tri_idx]
        interp = barycentric_batch(
            q, tri_pts[tv[:, 0]], tri_pts[tv[:, 1]], tri_pts[tv[:, 2]]
        )
        l1, l2, l3 = interp
        values = l1 * times[tv[:, 0]] + l2 * times[tv[:, 1]] + l3 * times[tv[:, 2]]
        return scale * values

    def predict_batch(self, specs: Sequence[DomainSpec]) -> np.ndarray:
        """Predict step times for many domains in one vectorized pass."""
        return self.predict_features_batch(
            [s.aspect_ratio for s in specs], [float(s.points) for s in specs]
        )

    def predict_ratios(self, specs: Sequence[DomainSpec]) -> List[float]:
        """Normalised relative execution times — the allocator's input.

        Matches the paper's observation that only *relative* times matter
        for processor allocation (Sec 3.1).
        """
        times = [self.predict(s) for s in specs]
        total = sum(times)
        if total <= 0:
            raise PredictionError("predicted times sum to a non-positive value")
        return [t / total for t in times]
