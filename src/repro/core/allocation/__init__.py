"""Processor allocation: partitioning the 2-D processor grid (Sec 3.2).

Given predicted execution-time ratios of ``k`` sibling nests, Algorithm 1
of the paper carves the ``Px x Py`` virtual processor grid into ``k``
disjoint rectangles whose areas are proportional to the ratios, keeping
every rectangle as square-like as possible:

1. build a Huffman tree over the ratios (:mod:`~repro.core.allocation.huffman`),
2. traverse its internal nodes breadth-first, splitting the current
   rectangle along its *longer* dimension in the ratio of the left/right
   subtree weights (:mod:`~repro.core.allocation.splittree`).

Two baselines the paper compares against are provided:
:func:`naive_strip_partition` (consecutive strips proportional to point
counts — Sec 4.6) and :func:`equal_partition` (equal areas — Sec 3.2's
"simple strategy").
"""

from repro.core.allocation.huffman import HuffmanNode, HuffmanTree
from repro.core.allocation.splittree import split_tree_partition
from repro.core.allocation.partition import (
    Allocation,
    partition_grid,
    allocation_error,
)
from repro.core.allocation.baselines import naive_strip_partition, equal_partition

__all__ = [
    "HuffmanNode",
    "HuffmanTree",
    "split_tree_partition",
    "Allocation",
    "partition_grid",
    "allocation_error",
    "naive_strip_partition",
    "equal_partition",
]
