"""Algorithm 1: the balanced split-tree over the processor grid.

The Huffman tree's internal nodes are visited breadth-first; each node
owns a rectangle of the processor grid (the root owns all of it) and cuts
it **along the longer dimension** in the ratio of the left/right subtree
weights (paper lines 5-18). Cutting the longer dimension keeps the leaf
rectangles as square-like as possible, minimising the difference between
x- and y-direction communication volumes (Fig 4).

Integer rounding: the cut position is the nearest integer to the exact
proportional split, clamped so each side keeps at least one processor
row/column *and* enough area for every sibling in its subtree.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import AllocationError
from repro.core.allocation.huffman import HuffmanNode, HuffmanTree
from repro.runtime.process_grid import GridRect

__all__ = ["split_tree_partition", "proportional_split"]


def proportional_split(
    length: int, w_left: float, w_right: float, min_left: int = 1, min_right: int = 1
) -> int:
    """Integer size of the left part when cutting *length* in ratio Wl:Wr.

    Rounds to nearest; clamps to ``[min_left, length - min_right]``.
    """
    if length < min_left + min_right:
        raise AllocationError(
            f"cannot split extent {length} into parts of at least "
            f"{min_left} and {min_right}"
        )
    total = w_left + w_right
    if total <= 0:
        raise AllocationError("split weights must sum to a positive value")
    exact = length * (w_left / total)
    left = int(round(exact))
    return max(min_left, min(left, length - min_right))


def _min_extent_for(node: HuffmanNode, other_extent: int) -> int:
    """Minimum extent along the cut dimension so *node*'s leaves fit.

    Each sibling needs at least one processor, so a subtree with ``m``
    leaves needs area ``>= m``: extent ``>= ceil(m / other_extent)``.
    """
    m = len(node.leaves())
    return max(1, -(-m // other_extent))


def _try_cut(
    rect: GridRect, wl: float, wr: float, leaves_l: int, leaves_r: int
) -> tuple[GridRect, GridRect] | None:
    """Cut *rect* proportionally, preferring the longer dimension.

    Falls back to the shorter dimension when the longer one cannot host
    both subtrees' leaf counts; returns ``None`` when neither can.
    """
    horizontal_first = rect.width >= rect.height
    for cut_x in ((True, False) if horizontal_first else (False, True)):
        if cut_x:
            extent, cross = rect.width, rect.height
        else:
            extent, cross = rect.height, rect.width
        min_l = max(1, -(-leaves_l // cross))
        min_r = max(1, -(-leaves_r // cross))
        if min_l + min_r > extent:
            continue
        cut = proportional_split(extent, wl, wr, min_l, min_r)
        return rect.split_horizontal(cut) if cut_x else rect.split_vertical(cut)
    return None


def _partition_items(
    items: List[tuple[int, float]], rect: GridRect, out: Dict[int, GridRect]
) -> None:
    """Recursive bisection of an item list, robust to extreme leaf counts.

    Used when the Huffman-guided cut is infeasible (many siblings on a
    tiny grid): items are rebalanced into count-halves, which is always
    cuttable when the rectangle has enough area.
    """
    if len(items) == 1:
        out[items[0][0]] = rect
        return
    half = len(items) // 2
    left, right = items[:half], items[half:]
    wl = sum(w for _, w in left)
    wr = sum(w for _, w in right)
    cut = _try_cut(rect, wl, wr, len(left), len(right))
    if cut is None:
        raise AllocationError(
            f"cannot tile {rect.width}x{rect.height} among {len(items)} siblings"
        )
    _partition_items(left, cut[0], out)
    _partition_items(right, cut[1], out)


def split_tree_partition(tree: HuffmanTree, grid_rect: GridRect) -> Dict[int, GridRect]:
    """Partition *grid_rect* among the tree's leaves (Algorithm 1).

    Returns a mapping from sibling index (the Huffman leaf item) to its
    allocated :class:`~repro.runtime.process_grid.GridRect`. The
    rectangles exactly tile *grid_rect*.

    When a Huffman-guided cut is geometrically infeasible (the subtree
    leaf counts cannot fit either cut direction — only possible with
    nearly as many siblings as processors), that subtree degrades to a
    count-balanced recursive bisection so every sibling still receives a
    non-empty rectangle.
    """
    if tree.num_leaves > grid_rect.area:
        raise AllocationError(
            f"{tree.num_leaves} siblings cannot share {grid_rect.area} processors"
        )
    rects: Dict[int, GridRect] = {}

    def assign(node: HuffmanNode, rect: GridRect) -> None:
        if node.is_leaf:
            assert node.item is not None
            rects[node.item] = rect
            return
        left, right = node.left, node.right
        assert left is not None and right is not None
        wl = tree.subtree_weight(left)
        wr = tree.subtree_weight(right)
        cut = _try_cut(rect, wl, wr, len(left.leaves()), len(right.leaves()))
        if cut is None:
            items = [(i, tree.weights[i]) for i in node.leaves()]
            _partition_items(items, rect, rects)
            return
        assign(left, cut[0])
        assign(right, cut[1])

    assign(tree.root, grid_rect)

    missing = set(range(tree.num_leaves)) - set(rects)
    if missing:  # pragma: no cover - defensive
        raise AllocationError(f"siblings {sorted(missing)} received no rectangle")
    return rects


def partition_squareness(rects: List[GridRect]) -> float:
    """Mean squareness of a partition — the Fig 4 quality metric."""
    if not rects:
        raise AllocationError("no rectangles to score")
    return sum(r.squareness() for r in rects) / len(rects)
