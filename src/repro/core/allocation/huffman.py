"""Huffman trees over execution-time ratios.

Algorithm 1 (line 1) builds a Huffman tree with the sibling execution-time
ratios as weights. The classic greedy construction — repeatedly merge the
two lightest subtrees — yields a binary tree in which, at every internal
node, the left and right subtrees carry fairly balanced total weight; the
split-tree walks this structure to cut the processor grid.

Determinism: ties are broken by insertion order (earlier-created subtrees
first), so two runs over the same ratios produce identical trees and
therefore identical partitions.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.errors import AllocationError

__all__ = ["HuffmanNode", "HuffmanTree"]


@dataclass
class HuffmanNode:
    """A node of the Huffman tree.

    Leaves carry ``item`` (the sibling index) and its weight; internal
    nodes carry the sum of their children's weights.
    """

    weight: float
    item: Optional[int] = None
    left: Optional["HuffmanNode"] = None
    right: Optional["HuffmanNode"] = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node is a leaf (i.e. a sibling domain)."""
        return self.item is not None

    def leaves(self) -> List[int]:
        """Sibling indices under this node, left to right."""
        if self.is_leaf:
            assert self.item is not None
            return [self.item]
        out: List[int] = []
        if self.left is not None:
            out.extend(self.left.leaves())
        if self.right is not None:
            out.extend(self.right.leaves())
        return out

    def depth(self) -> int:
        """Height of the subtree (a leaf has depth 0)."""
        if self.is_leaf:
            return 0
        depths = [c.depth() for c in (self.left, self.right) if c is not None]
        return 1 + max(depths, default=0)


class HuffmanTree:
    """A Huffman tree over non-negative weights.

    Parameters
    ----------
    weights:
        One weight per sibling (the predicted execution-time ratios).
        All must be positive — a sibling predicted to take zero time
        would receive zero processors, which WRF cannot run with.
    """

    def __init__(self, weights: Sequence[float]):
        if not weights:
            raise AllocationError("HuffmanTree needs at least one weight")
        for i, w in enumerate(weights):
            if not (w > 0):
                raise AllocationError(f"weight[{i}] must be positive, got {w}")
        self._weights = [float(w) for w in weights]
        self._root = self._build(self._weights)

    @staticmethod
    def _build(weights: Sequence[float]) -> HuffmanNode:
        counter = itertools.count()
        heap: List[tuple[float, int, HuffmanNode]] = [
            (w, next(counter), HuffmanNode(weight=w, item=i))
            for i, w in enumerate(weights)
        ]
        heapq.heapify(heap)
        while len(heap) > 1:
            wl, _, left = heapq.heappop(heap)
            wr, _, right = heapq.heappop(heap)
            node = HuffmanNode(weight=wl + wr, left=left, right=right)
            heapq.heappush(heap, (node.weight, next(counter), node))
        return heap[0][2]

    # ------------------------------------------------------------------
    @property
    def root(self) -> HuffmanNode:
        """The tree root (a leaf when there is a single sibling)."""
        return self._root

    @property
    def weights(self) -> List[float]:
        """The input weights (a copy)."""
        return list(self._weights)

    @property
    def num_leaves(self) -> int:
        """Number of siblings."""
        return len(self._weights)

    def internal_nodes_bfs(self) -> Iterator[HuffmanNode]:
        """Internal nodes in breadth-first order (Algorithm 1, line 2)."""
        queue = [self._root]
        while queue:
            node = queue.pop(0)
            if node.is_leaf:
                continue
            yield node
            if node.left is not None:
                queue.append(node.left)
            if node.right is not None:
                queue.append(node.right)

    def subtree_weight(self, node: HuffmanNode) -> float:
        """Total leaf weight under *node* (equals ``node.weight``)."""
        return sum(self._weights[i] for i in node.leaves())
