"""Baseline allocation policies the paper compares against.

* :func:`naive_strip_partition` — "a naive strategy of subdividing the
  processor space into consecutive rectangular chunks based on the total
  number of points in the sibling" (Sec 4.6). Vertical strips of full
  grid height, widths proportional to the weights.
* :func:`equal_partition` — "a simple processor allocation strategy is to
  equally subdivide the total number of processors among the nested
  simulations" (Sec 3.2), here as equal-width strips.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import AllocationError
from repro.core.allocation.partition import Allocation, validate_tiling
from repro.runtime.process_grid import GridRect, ProcessGrid

__all__ = ["naive_strip_partition", "equal_partition", "strip_partition"]


def strip_partition(
    grid: ProcessGrid, weights: Sequence[float], *, validate: bool = True
) -> Allocation:
    """Full-height vertical strips with widths proportional to *weights*.

    The last strip absorbs rounding remainders. Every strip must end up
    at least one column wide.
    """
    if not weights:
        raise AllocationError("need at least one weight")
    total = float(sum(weights))
    if total <= 0:
        raise AllocationError("weights must sum to a positive value")
    k = len(weights)
    if k > grid.px:
        raise AllocationError(
            f"{k} strips cannot fit in {grid.px} processor columns"
        )
    norm = [float(w) / total for w in weights]

    widths: List[int] = []
    remaining_cols = grid.px
    remaining_weight = 1.0
    for i, w in enumerate(norm):
        strips_left = k - i
        if i == k - 1:
            width = remaining_cols
        else:
            width = round(remaining_cols * (w / remaining_weight))
            width = max(1, min(width, remaining_cols - (strips_left - 1)))
        widths.append(width)
        remaining_cols -= width
        remaining_weight -= w
    if remaining_cols != 0:  # pragma: no cover - defensive
        raise AllocationError("strip widths failed to consume the grid")

    rects: List[GridRect] = []
    x = 0
    for width in widths:
        rects.append(GridRect(x, 0, width, grid.py))
        x += width
    if validate:
        validate_tiling(grid, rects)
    return Allocation(grid=grid, rects=tuple(rects), ratios=tuple(norm))


def naive_strip_partition(
    grid: ProcessGrid, points: Sequence[int], *, validate: bool = True
) -> Allocation:
    """The Sec 4.6 baseline: strips proportional to sibling *point counts*."""
    for i, p in enumerate(points):
        if p <= 0:
            raise AllocationError(f"points[{i}] must be positive, got {p}")
    return strip_partition(grid, [float(p) for p in points], validate=validate)


def equal_partition(
    grid: ProcessGrid, num_siblings: int, *, validate: bool = True
) -> Allocation:
    """The Sec 3.2 baseline: equal shares regardless of workload."""
    if num_siblings <= 0:
        raise AllocationError(f"num_siblings must be positive, got {num_siblings}")
    return strip_partition(grid, [1.0] * num_siblings, validate=validate)
