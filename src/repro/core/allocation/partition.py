"""The public allocation entry point and allocation quality metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import AllocationError
from repro.core.allocation.huffman import HuffmanTree
from repro.core.allocation.splittree import split_tree_partition
from repro.runtime.process_grid import GridRect, ProcessGrid

__all__ = ["Allocation", "partition_grid", "allocation_error", "validate_tiling"]


@dataclass(frozen=True)
class Allocation:
    """The result of partitioning a processor grid among siblings.

    Attributes
    ----------
    grid:
        The full virtual processor grid.
    rects:
        One rectangle per sibling, indexed like the input ratios.
    ratios:
        The (normalised) execution-time ratios that drove the partition.
    """

    grid: ProcessGrid
    rects: tuple[GridRect, ...]
    ratios: tuple[float, ...]

    @property
    def num_siblings(self) -> int:
        """Number of sibling allocations."""
        return len(self.rects)

    def processors_for(self, sibling: int) -> int:
        """Processor count allocated to *sibling*."""
        return self.rects[sibling].area

    def share_of(self, sibling: int) -> float:
        """Fraction of the grid allocated to *sibling*."""
        return self.rects[sibling].area / self.grid.size


def validate_tiling(grid: ProcessGrid, rects: Sequence[GridRect]) -> None:
    """Assert that *rects* exactly tile *grid* (disjoint + full cover)."""
    total = 0
    for i, r in enumerate(rects):
        if r.x1 > grid.px or r.y1 > grid.py:
            raise AllocationError(f"rect {i} {r} exceeds grid {grid.shape}")
        total += r.area
        for j in range(i + 1, len(rects)):
            if r.overlaps(rects[j]):
                raise AllocationError(f"rects {i} and {j} overlap: {r} vs {rects[j]}")
    if total != grid.size:
        raise AllocationError(
            f"rectangles cover {total} processors, grid has {grid.size}"
        )


def partition_grid(
    grid: ProcessGrid, ratios: Sequence[float], *, validate: bool = True
) -> Allocation:
    """Partition *grid* among siblings in proportion to *ratios*.

    This is the paper's allocation method: Huffman tree over the ratios,
    then the balanced split-tree of Algorithm 1. Ratios are normalised
    internally; their absolute scale is irrelevant (only *relative*
    execution times matter — paper Sec 3.1).
    """
    if not ratios:
        raise AllocationError("need at least one sibling ratio")
    total = float(sum(ratios))
    if total <= 0:
        raise AllocationError(f"ratios must sum to a positive value, got {total}")
    norm = tuple(float(r) / total for r in ratios)

    tree = HuffmanTree(norm)
    rect_map: Dict[int, GridRect] = split_tree_partition(tree, grid.full_rect())
    rects = tuple(rect_map[i] for i in range(len(norm)))
    if validate:
        validate_tiling(grid, rects)
    return Allocation(grid=grid, rects=rects, ratios=norm)


def allocation_error(alloc: Allocation) -> float:
    """Worst relative deviation of processor share from the ideal ratio.

    0.0 means every sibling got exactly its proportional share; integer
    rounding makes small deviations unavoidable.
    """
    worst = 0.0
    for i, ratio in enumerate(alloc.ratios):
        share = alloc.share_of(i)
        worst = max(worst, abs(share - ratio) / ratio)
    return worst
