"""Worker-resident ensemble state and the task functions that drive it.

One module-global :class:`_WorkerState` lives in every pool worker (and,
for ``jobs=1``, in the driver's own process — the inline path runs the
exact same functions). The driver talks to it exclusively through the
module-level task functions below, routed by member affinity over
:class:`~repro.exec.workqueue.AffinityWorkQueue`, so a member's model
state, its warm plan/placement/route caches, and the worker's local memo
never cross a process boundary; only compact :class:`MemberTick` records
and checkpoints do.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.exec.placementcache import placement_cache_stats
from repro.exec.plancache import plan_cache_stats

from repro.ensemble.member import (
    EnsembleCheckpoint,
    EnsembleMember,
    MemberSpec,
    MemberSummary,
    MemberTick,
    EnsemblePolicy,
    PricingContext,
)
from repro.ensemble.memo import (
    CrossMemberMemo,
    MemoStats,
    SharedMemoHandle,
    SharedMemoTable,
)

__all__ = [
    "init_worker",
    "create_members",
    "advance_wave",
    "checkpoint_member",
    "kill_member",
    "live_summaries",
    "collect_stats",
]


class _WorkerState:
    def __init__(
        self,
        policy: EnsemblePolicy,
        shared: Optional[SharedMemoTable],
    ):
        self.policy = policy
        self.context = PricingContext(policy)
        self.memo = CrossMemberMemo(shared=shared)
        self.members: Dict[int, EnsembleMember] = {}


_STATE: Optional[_WorkerState] = None


def _state() -> _WorkerState:
    if _STATE is None:
        raise ConfigurationError("ensemble worker not initialised")
    return _STATE


def init_worker(
    policy: EnsemblePolicy,
    memo_handle: Optional[SharedMemoHandle],
    memo_lock: Any,
) -> None:
    """Pool initializer (also called inline for ``jobs=1``)."""
    global _STATE
    shared = None
    if policy.memo and memo_handle is not None:
        shared = SharedMemoTable.attach(memo_handle, memo_lock)
    _STATE = _WorkerState(policy, shared)


def create_members(
    payload: Tuple[Tuple[int, MemberSpec, Optional[int], Optional[EnsembleCheckpoint]], ...],
) -> Tuple[int, ...]:
    """Instantiate members ``(id, spec, seed, checkpoint)`` here."""
    st = _state()
    created: List[int] = []
    for member_id, spec, seed, checkpoint in payload:
        if member_id in st.members:
            raise ConfigurationError(f"member {member_id} already exists")
        st.members[member_id] = EnsembleMember(
            member_id, spec, st.context, seed=seed, checkpoint=checkpoint
        )
        created.append(member_id)
    return tuple(created)


def advance_wave(
    payload: Tuple[int, Tuple[int, ...]],
) -> Tuple[MemberTick, ...]:
    """Tick every listed member once; ``(tick_index, member_ids)``."""
    st = _state()
    tick_index, member_ids = payload
    if not st.policy.memo:
        # No-dedup baseline still needs *a* memo object; a throwaway
        # per-member instance guarantees zero cross-member reuse.
        return tuple(
            st.members[m].tick(tick_index, CrossMemberMemo())
            for m in member_ids
        )
    return tuple(st.members[m].tick(tick_index, st.memo) for m in member_ids)


def checkpoint_member(member_id: int) -> EnsembleCheckpoint:
    """Freeze a member for branching; bumps its branch counter."""
    st = _state()
    member = st.members[member_id]
    checkpoint = member.checkpoint()
    member.branch_count += 1
    return checkpoint


def kill_member(member_id: int) -> MemberSummary:
    """Remove a member; returns its final summary."""
    st = _state()
    member = st.members.pop(member_id)
    return member.summary(alive=False)


def live_summaries(_: Any = None) -> Tuple[MemberSummary, ...]:
    st = _state()
    return tuple(
        st.members[m].summary(alive=True) for m in sorted(st.members)
    )


def collect_stats(_: Any = None) -> Dict[str, Any]:
    """Worker-side diagnostics: memo traffic + cache counters."""
    st = _state()
    plan = plan_cache_stats()
    placement = placement_cache_stats()
    return {
        "memo": st.memo.stats,
        "memo_entries": st.memo.entries(),
        "plan_hits": plan.hits,
        "plan_misses": plan.misses,
        "placement_hits": placement.hits,
        "placement_misses": placement.misses,
    }
