"""Runtime ensemble fabric: many steered scenarios, one machine budget.

The ROADMAP's "scenario diversity under heavy traffic" proof point:
drive hundreds-to-thousands of seeded
:class:`~repro.steering.driver.SteeredRun` members concurrently, with
runtime ``kill``/``spawn``/``branch`` (ProWis-style ensemble management,
PAPERS.md arxiv 2308.05019), while the pricing work that dominates each
member-tick is deduplicated across members:

* :mod:`repro.ensemble.member` — one member: seeded model + steered run
  + pricing loop + checkpoint/branch;
* :mod:`repro.ensemble.memo` — the cross-member memo; members that reach
  the same scheduling state share one plan/placement/route/pricing pass
  (a 1000-member ensemble clustered into K nest states does ~K passes);
* :mod:`repro.ensemble.driver` — the tick loop over the affinity work
  queue, with an exact determinism contract: merged snapshots are
  byte-identical at any worker count;
* :mod:`repro.ensemble.dashboard` — live ASCII/JSON frames
  (``repro ensemble --dashboard``).

See ``docs/ensemble.md`` for the driver API, the dedup key, and the
determinism contract.
"""

from repro.ensemble.dashboard import (
    EnsembleProgress,
    MemberRow,
    progress_json,
    render_dashboard,
    render_json_line,
)
from repro.ensemble.driver import (
    EnsembleDriver,
    EnsembleEvent,
    EnsembleResult,
    parse_event,
)
from repro.ensemble.member import (
    EnsembleCheckpoint,
    EnsembleMember,
    EnsemblePolicy,
    MemberSpec,
    MemberSummary,
    MemberTick,
    branch_seed,
    default_member_spec,
)
from repro.ensemble.memo import (
    CrossMemberMemo,
    MemoStats,
    PricedState,
    SharedMemoTable,
    state_digest,
)

__all__ = [
    "EnsembleDriver",
    "EnsembleEvent",
    "EnsembleResult",
    "parse_event",
    "EnsembleMember",
    "EnsemblePolicy",
    "EnsembleCheckpoint",
    "MemberSpec",
    "MemberSummary",
    "MemberTick",
    "branch_seed",
    "default_member_spec",
    "CrossMemberMemo",
    "MemoStats",
    "PricedState",
    "SharedMemoTable",
    "state_digest",
    "EnsembleProgress",
    "MemberRow",
    "render_dashboard",
    "progress_json",
    "render_json_line",
]
