"""One ensemble member: a seeded steered run plus its pricing loop.

A member wraps a :class:`~repro.steering.driver.SteeredRun` with

* a **seed** and an RNG stream (``make_rng(seed)``) — branching forks
  the stream deterministically via :func:`branch_seed`, so a branched
  child's stream equals a fresh member seeded with the branch key;
* a **pricing loop**: after every tick that replanned (and on the first
  tick), the member prices its current scheduling state under *both*
  strategies through the cross-member memo — a hit returns the exact
  float64 vector a miss would have computed;
* **checkpoint/branch** support built on
  :meth:`~repro.steering.driver.SteeredRun.checkpoint`, so a member can
  be forked onto any worker and continue bit-exactly.

Everything a member reports per tick is split in two: the
:meth:`MemberTick.deterministic` payload (model state, modeled times,
priced vector — identical at any worker count) and wall-side
diagnostics (wall ns, memo source) that depend on scheduling and are
excluded from the determinism contract.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.mapping.txyz import TxyzMapping
from repro.errors import ConfigurationError
from repro.exec.plancache import sequential_plan
from repro.iosim.model import IoModel
from repro.obs.trace import tracer
from repro.perfsim.simulate import simulate_iteration
from repro.runtime.decomposition import choose_process_grid
from repro.runtime.process_grid import ProcessGrid
from repro.steering.driver import SteeredRun
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P
from repro.util.rng import make_rng
from repro.wrf.fields import ModelState
from repro.wrf.grid import DomainSpec
from repro.wrf.model import NestedModel

from repro.ensemble.memo import CrossMemberMemo, PricedState, state_digest

__all__ = [
    "EnsemblePolicy",
    "PricingContext",
    "MemberSpec",
    "default_member_spec",
    "branch_seed",
    "MemberTick",
    "MemberSummary",
    "EnsembleCheckpoint",
    "EnsembleMember",
]

_MACHINES = {"bgl": BLUE_GENE_L, "bgp": BLUE_GENE_P}
_MAPPINGS = {"oblivious": ObliviousMapping, "txyz": TxyzMapping}


@dataclass(frozen=True)
class EnsemblePolicy:
    """How every member of an ensemble is priced (pure data, picklable)."""

    machine: str = "bgp"
    ranks: int = 4096
    mode: Optional[str] = None
    io: Optional[str] = "pnetcdf"
    mapping: str = "oblivious"
    #: Cross-member memoization of pricing work. Off prices every member
    #: individually — the benchmark's no-dedup baseline.
    memo: bool = True
    memo_slots: int = 8192

    def validate(self) -> None:
        if self.machine not in _MACHINES:
            raise ConfigurationError(
                f"unknown machine {self.machine!r} "
                f"(choose from {sorted(_MACHINES)})"
            )
        if self.mapping not in _MAPPINGS:
            raise ConfigurationError(
                f"unknown mapping {self.mapping!r} "
                f"(choose from {sorted(_MAPPINGS)})"
            )
        if self.ranks < 1:
            raise ConfigurationError(f"ranks must be >= 1, got {self.ranks}")
        if self.memo_slots < 1:
            raise ConfigurationError(
                f"memo_slots must be >= 1, got {self.memo_slots}"
            )


class PricingContext:
    """Resolved (non-picklable) pricing objects for one worker."""

    def __init__(self, policy: EnsemblePolicy):
        policy.validate()
        self.policy = policy
        self.machine = _MACHINES[policy.machine]
        self.grid = ProcessGrid(*choose_process_grid(policy.ranks))
        self.mapping = _MAPPINGS[policy.mapping]()
        self.mode = policy.mode
        self.io_model = IoModel(policy.io) if policy.io else None
        #: Everything pricing depends on besides the domain specs — the
        #: policy half of the memo key.
        self.sig: Tuple[Any, ...] = (
            policy.machine,
            policy.mode or "",
            policy.io or "",
            policy.mapping,
            self.grid.px,
            self.grid.py,
        )


@dataclass(frozen=True)
class MemberSpec:
    """Deterministic recipe for one member (pure data, picklable)."""

    seed: int
    parent: DomainSpec
    nests: Tuple[DomainSpec, ...]
    num_depressions: int = 2
    amplitude: float = 1.2
    retrack_interval: int = 1
    min_move_cells: int = 1
    respawn_cost_s_per_point: float = 0.0
    #: Std-dev of the height perturbation a branched child applies from
    #: its own RNG stream; 0 keeps branches bit-identical to the parent
    #: until steering diverges them.
    branch_perturb: float = 0.0

    def with_seed(self, seed: int) -> "MemberSpec":
        return replace(self, seed=seed)


def default_member_spec(
    seed: int,
    *,
    parent_nx: int = 40,
    parent_ny: int = 32,
    dx_km: float = 24.0,
    nests: int = 2,
    nest_px: int = 10,
    refinement: int = 2,
    retrack_interval: int = 1,
    min_move_cells: int = 1,
    num_depressions: int = 2,
    amplitude: float = 1.2,
    respawn_cost_s_per_point: float = 0.0,
    branch_perturb: float = 0.0,
) -> MemberSpec:
    """The standard member shape used by the CLI, tests, and benchmark.

    Nests start spread along the parent's diagonal; the tracker pulls
    them onto the seeded depressions within the first few ticks.
    """
    if nests < 1:
        raise ConfigurationError(f"need at least one nest, got {nests}")
    parent = DomainSpec("d01", parent_nx, parent_ny, dx_km=dx_km)
    extent = -(-nest_px // refinement)  # ceil: footprint in parent cells
    max_x = parent_nx - extent - 1
    max_y = parent_ny - extent - 1
    if max_x < 1 or max_y < 1:
        raise ConfigurationError(
            f"nest {nest_px}px/r{refinement} does not fit a "
            f"{parent_nx}x{parent_ny} parent"
        )
    specs = []
    for i in range(nests):
        frac = i / max(1, nests - 1) if nests > 1 else 0.0
        start = (
            max(1, min(max_x, round(1 + frac * (max_x - 1)))),
            max(1, min(max_y, round(1 + frac * (max_y - 1)))),
        )
        specs.append(
            DomainSpec(
                f"d{i + 2:02d}", nest_px, nest_px, dx_km / refinement,
                parent="d01", parent_start=start,
                refinement=refinement, level=1,
            )
        )
    return MemberSpec(
        seed=seed,
        parent=parent,
        nests=tuple(specs),
        num_depressions=num_depressions,
        amplitude=amplitude,
        retrack_interval=retrack_interval,
        min_move_cells=min_move_cells,
        respawn_cost_s_per_point=respawn_cost_s_per_point,
        branch_perturb=branch_perturb,
    )


def branch_seed(parent_seed: int, branch_index: int) -> int:
    """Deterministic RNG seed for the *branch_index*-th fork of a member.

    A keyed hash, not an offset: forks of forks can never collide with
    sibling streams, and the child's stream is exactly the stream of a
    fresh member seeded with this value.
    """
    payload = f"repro.ensemble.branch:{parent_seed}:{branch_index}".encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little") >> 1  # keep it positive


@dataclass(frozen=True)
class MemberTick:
    """One member-tick. Deterministic core plus wall-side diagnostics."""

    member_id: int
    tick: int
    iteration: int
    sim_time_s: float
    features: int
    moved: int
    replanned: bool
    steer_model_s: float
    priced: PricedState
    #: Diagnostics — depend on worker scheduling, excluded from the
    #: deterministic payload.
    memo_source: str = "member"
    wall_ns: int = 0

    def deterministic(self) -> Dict[str, Any]:
        """The fields the jobs=1/N byte-identity contract covers."""
        return {
            "member": self.member_id,
            "tick": self.tick,
            "iteration": self.iteration,
            "sim_time_s": self.sim_time_s,
            "features": self.features,
            "moved": self.moved,
            "replanned": self.replanned,
            "steer_model_s": self.steer_model_s,
            "priced": list(self.priced.to_vector()),
        }

    @property
    def steer_time(self) -> float:
        """Alias so :func:`repro.obs.report.reconcile` can pair us."""
        return self.steer_model_s


@dataclass(frozen=True)
class MemberSummary:
    """Final deterministic account of one member."""

    member_id: int
    seed: int
    ticks: int
    sim_time_s: float
    alive: bool
    branches: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "member": self.member_id,
            "seed": self.seed,
            "ticks": self.ticks,
            "sim_time_s": self.sim_time_s,
            "alive": self.alive,
            "branches": self.branches,
        }


@dataclass(frozen=True)
class EnsembleCheckpoint:
    """A member frozen for branching/migration (picklable)."""

    member_id: int
    spec: MemberSpec
    seed: int
    branch_count: int
    ticks: int
    sim_time_s: float
    steered: Any  # SteeredCheckpoint


class EnsembleMember:
    """A resident, tickable, checkpointable steered scenario."""

    def __init__(
        self,
        member_id: int,
        spec: MemberSpec,
        context: PricingContext,
        *,
        seed: Optional[int] = None,
        checkpoint: Optional[EnsembleCheckpoint] = None,
    ):
        self.member_id = member_id
        self.spec = spec
        self.context = context
        self.seed = seed if seed is not None else spec.seed
        self.rng = make_rng(self.seed)
        self.branch_count = 0
        self._priced: Optional[PricedState] = None
        if checkpoint is None:
            self.ticks = 0
            self.sim_time_s = 0.0
            state = ModelState.with_disturbances(
                spec.parent.nx,
                spec.parent.ny,
                num_depressions=spec.num_depressions,
                amplitude=spec.amplitude,
                seed=spec.seed,
            )
            model = NestedModel(
                spec.parent, list(spec.nests), initial_state=state
            )
            self.run = SteeredRun(
                model,
                context.grid,
                retrack_interval=spec.retrack_interval,
                min_move_cells=spec.min_move_cells,
                machine=context.machine,
                mapping=context.mapping,
                mode=context.mode,
                respawn_cost_s_per_point=spec.respawn_cost_s_per_point,
            )
        else:
            self.ticks = checkpoint.ticks
            self.sim_time_s = checkpoint.sim_time_s
            self.run = SteeredRun.restore(
                checkpoint.steered,
                context.grid,
                retrack_interval=spec.retrack_interval,
                min_move_cells=spec.min_move_cells,
                machine=context.machine,
                mapping=context.mapping,
                mode=context.mode,
                respawn_cost_s_per_point=spec.respawn_cost_s_per_point,
            )
            if spec.branch_perturb > 0.0:
                # Divergence seeded from the child's own stream — fully
                # determined by the branch key.
                h = self.run.model.state.h
                h += self.rng.normal(0.0, spec.branch_perturb, h.shape)

    # ------------------------------------------------------------------
    def state_digest(self) -> bytes:
        model = self.run.model
        specs = tuple(model.nests[n].spec for n in model.sibling_names)
        return state_digest(self.context.sig, model.parent_spec, specs)

    def _price(self) -> PricedState:
        ctx = self.context
        model = self.run.model
        specs = [model.nests[n].spec for n in model.sibling_names]
        seq = simulate_iteration(
            sequential_plan(ctx.grid, model.parent_spec, specs),
            ctx.machine,
            mapping=ctx.mapping,
            mode=ctx.mode,
            io_model=ctx.io_model,
        )
        par = simulate_iteration(
            self.run.plan,
            ctx.machine,
            mapping=ctx.mapping,
            mode=ctx.mode,
            io_model=ctx.io_model,
            placement=self.run.placement,
        )
        return PricedState.from_reports(seq, par)

    def tick(self, tick_index: int, memo: CrossMemberMemo) -> MemberTick:
        """Advance one outer iteration, steer, and (re)price on change."""
        t0 = time.perf_counter_ns()
        tr = tracer()
        run = self.run
        with tr.span(
            "ensemble.member_tick",
            {"member": self.member_id, "tick": tick_index}
            if tr.enabled
            else None,
        ):
            run.model.advance(None)
            event = None
            if run.model.iteration % run.retrack_interval == 0:
                event = run.steer()
            replanned = bool(event is not None and event.replanned)
            source = "member"
            if self._priced is None or replanned:
                found = memo.lookup(self.state_digest())
                if found is None:
                    self._priced = self._price()
                    memo.store(self.state_digest(), self._priced)
                    source = "computed"
                else:
                    self._priced, source = found
            priced = self._priced
            steer_model_s = event.steer_model_s if event is not None else 0.0
            self.sim_time_s += priced.par_total + steer_model_s
            self.ticks += 1
            if tr.enabled:
                # Per-member phase attribution under this tick's span
                # (the SteeredRun's own steer phase lives in its span).
                tr.phase("parent", priced.par_parent, {"member": self.member_id})
                tr.phase(
                    "nest", priced.par_nest_phase,
                    {"member": self.member_id, "sibling": "all"},
                )
                tr.phase("io", priced.par_io, {"member": self.member_id})
                tr.phase("steer", steer_model_s, {"member": self.member_id})
        return MemberTick(
            member_id=self.member_id,
            tick=tick_index,
            iteration=run.model.iteration,
            sim_time_s=self.sim_time_s,
            features=len(event.features) if event is not None else 0,
            moved=event.num_moved if event is not None else 0,
            replanned=replanned,
            steer_model_s=steer_model_s,
            priced=priced,
            memo_source=source,
            wall_ns=time.perf_counter_ns() - t0,
        )

    # ------------------------------------------------------------------
    def checkpoint(self) -> EnsembleCheckpoint:
        return EnsembleCheckpoint(
            member_id=self.member_id,
            spec=self.spec,
            seed=self.seed,
            branch_count=self.branch_count,
            ticks=self.ticks,
            sim_time_s=self.sim_time_s,
            steered=self.run.checkpoint(),
        )

    def next_branch_seed(self) -> int:
        """The seed the next branch of this member will run under."""
        return branch_seed(self.seed, self.branch_count)

    def summary(self, *, alive: bool) -> MemberSummary:
        return MemberSummary(
            member_id=self.member_id,
            seed=self.seed,
            ticks=self.ticks,
            sim_time_s=self.sim_time_s,
            alive=alive,
            branches=self.branch_count,
        )
