"""Live ensemble dashboard: ASCII frames and canonical JSON.

The driver publishes one :class:`EnsembleProgress` frame per tick;
:func:`render_dashboard` turns a frame into a fixed-width ASCII panel
(header counters plus a per-member table with simulated-time progress
bars, truncated to the top rows with a "+N more" footer at ensemble
scale), and :func:`progress_json` into a stable JSON object — one line
per tick makes ``repro ensemble --json`` stream-parseable.

Rendering is pure: frames in, strings out, no terminal control codes —
the CLI decides whether to repaint or append, and tests assert content
without a tty.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = [
    "MemberRow",
    "EnsembleProgress",
    "render_dashboard",
    "progress_json",
    "render_json_line",
]

_BAR_WIDTH = 18


@dataclass(frozen=True)
class MemberRow:
    """One member's running totals as of the frame's tick."""

    member_id: int
    alive: bool
    ticks: int
    sim_time_s: float
    moved: int
    replans: int
    last_total_s: float
    #: Parallel-over-sequential improvement of the latest priced state.
    improvement: float


@dataclass(frozen=True)
class EnsembleProgress:
    """One per-tick dashboard frame."""

    tick: int
    ticks: int
    jobs: int
    alive: int
    spawned: int
    killed: int
    branched: int
    member_ticks: int
    wall_s: float
    members_per_s: float
    rows: Tuple[MemberRow, ...]


def _bar(value: float, peak: float, width: int = _BAR_WIDTH) -> str:
    if peak <= 0.0:
        return "." * width
    filled = int(round(width * min(1.0, value / peak)))
    return "#" * filled + "." * (width - filled)


def render_dashboard(progress: EnsembleProgress, *, max_rows: int = 16) -> str:
    """One frame as fixed-width ASCII (no control codes)."""
    head = (
        f"ensemble tick {progress.tick + 1}/{progress.ticks}"
        f" | jobs {progress.jobs}"
        f" | alive {progress.alive}"
        f" (+{progress.spawned} spawned, -{progress.killed} killed,"
        f" {progress.branched} branched)"
    )
    rate = (
        f"{progress.member_ticks} member-ticks"
        f" | {progress.members_per_s:,.1f} member-ticks/s"
        f" | wall {progress.wall_s:.2f}s"
    )
    lines = [head, rate]
    rows = progress.rows
    if rows:
        peak = max(r.sim_time_s for r in rows)
        lines.append(
            f"  {'id':>5} {'':1} {'sim time':>10} {'ticks':>5} "
            f"{'moves':>5} {'replans':>7} {'last':>9} {'gain':>6}  progress"
        )
        for row in rows[:max_rows]:
            mark = " " if row.alive else "x"
            lines.append(
                f"  {row.member_id:>5} {mark:1} {row.sim_time_s:>9.4f}s "
                f"{row.ticks:>5} {row.moved:>5} {row.replans:>7} "
                f"{row.last_total_s:>8.4f}s {row.improvement:>5.1%}  "
                f"{_bar(row.sim_time_s, peak)}"
            )
        if len(rows) > max_rows:
            lines.append(f"  (+{len(rows) - max_rows} more members)")
    return "\n".join(lines)


def progress_json(progress: EnsembleProgress) -> Dict[str, Any]:
    """The frame as a stable JSON-able dict (one line per tick)."""
    return {
        "tick": progress.tick,
        "ticks": progress.ticks,
        "jobs": progress.jobs,
        "alive": progress.alive,
        "spawned": progress.spawned,
        "killed": progress.killed,
        "branched": progress.branched,
        "member_ticks": progress.member_ticks,
        "wall_s": progress.wall_s,
        "members_per_s": progress.members_per_s,
        "members": [
            {
                "member": r.member_id,
                "alive": r.alive,
                "ticks": r.ticks,
                "sim_time_s": r.sim_time_s,
                "moves": r.moved,
                "replans": r.replans,
                "last_total_s": r.last_total_s,
                "improvement": r.improvement,
            }
            for r in progress.rows
        ],
    }


def render_json_line(progress: EnsembleProgress) -> str:
    """One compact JSON line for streaming consumers."""
    return json.dumps(progress_json(progress), sort_keys=True)
