"""The ensemble driver: N steered scenarios, one deterministic result.

:class:`EnsembleDriver` advances N seeded members tick-by-tick through
the affinity work queue (``jobs=1`` runs the identical code inline — the
determinism oracle). Per tick it:

1. applies scheduled :class:`EnsembleEvent`\\ s — ``kill`` retires a
   member, ``spawn`` starts a fresh one, ``branch`` checkpoints a member
   on its worker and restores the copy (with a deterministically forked
   RNG stream) on the new member's worker;
2. fans one ``advance_wave`` task per worker (members stay resident —
   only tick records cross the boundary);
3. folds the returned :class:`~repro.ensemble.member.MemberTick` records
   in ``(tick, member_id)`` order into the running deterministic
   snapshot and, when asked, publishes an
   :class:`~repro.ensemble.dashboard.EnsembleProgress` frame.

Determinism contract
--------------------
``EnsembleResult.snapshot_json()`` — metrics, member summaries, and the
deterministic core of every tick record — is **byte-identical for any
worker count**. Two ingredients make that true: records are folded in a
canonical order regardless of arrival order, and every priced value is a
pure function of member state (a memo hit returns bit-for-bit what the
miss computed, see :mod:`repro.ensemble.memo`). Wall times, memo hit
rates, and cache counters are scheduling-dependent, so they live beside
the snapshot (``wall_s``, ``memo``, ``caches``), never in it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.exec.workqueue import AffinityWorkQueue
from repro.obs.metrics import counter as _obs_counter
from repro.obs.metrics import gauge as _obs_gauge
from repro.obs.trace import tracer

from repro.ensemble import runtime
from repro.ensemble.dashboard import EnsembleProgress, MemberRow
from repro.ensemble.member import (
    EnsembleMember,
    EnsemblePolicy,
    MemberSpec,
    MemberSummary,
    MemberTick,
    branch_seed,
)
from repro.ensemble.memo import MemoStats, SharedMemoTable

__all__ = [
    "EnsembleEvent",
    "parse_event",
    "EnsembleDriver",
    "EnsembleResult",
]

_ACTIONS = ("kill", "spawn", "branch")

#: Fixed bucket bounds (simulated seconds per tick) for the snapshot's
#: tick-cost histogram — stable across runs by construction.
_TICK_BOUNDS = (1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0)

_MEMBER_TICKS = _obs_counter("ensemble.member_ticks")
_EVENTS_APPLIED = _obs_counter("ensemble.events")
_ALIVE_GAUGE = _obs_gauge("ensemble.members.alive")


@dataclass(frozen=True)
class EnsembleEvent:
    """A scheduled runtime intervention, applied at the *start* of a tick.

    ``kill``/``branch`` name a member; ``spawn`` optionally carries a
    seed (default: derived deterministically from the new member id).
    """

    tick: int
    action: str
    member: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"unknown ensemble event action {self.action!r} "
                f"(choose from {_ACTIONS})"
            )
        if self.tick < 0:
            raise ConfigurationError(f"event tick must be >= 0, got {self.tick}")
        if self.action in ("kill", "branch") and self.member is None:
            raise ConfigurationError(f"{self.action} event needs a member id")


def parse_event(text: str) -> EnsembleEvent:
    """Parse ``ACTION:TICK[:MEMBER]`` (for spawn the third field is a seed)."""
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise ConfigurationError(
            f"malformed event {text!r}; expected ACTION:TICK[:MEMBER]"
        )
    action = parts[0].strip().lower()
    try:
        tick = int(parts[1])
        arg = int(parts[2]) if len(parts) == 3 else None
    except ValueError:
        raise ConfigurationError(f"malformed event {text!r}: non-integer field")
    if action == "spawn":
        return EnsembleEvent(tick=tick, action=action, seed=arg)
    return EnsembleEvent(tick=tick, action=action, member=arg)


@dataclass
class EnsembleResult:
    """Everything one ensemble run produced."""

    ticks: int
    jobs: int
    records: Tuple[MemberTick, ...]
    members: Tuple[MemberSummary, ...]
    #: Deterministic registry-format snapshot (same at any ``jobs``).
    metrics: Dict[str, Dict[str, Any]]
    #: Aggregated memo traffic across workers (wall-side diagnostic).
    memo: MemoStats
    #: Summed per-worker plan/placement cache counters (diagnostic).
    caches: Dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0
    member_ticks: int = 0

    @property
    def members_per_s(self) -> float:
        return self.member_ticks / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def dedup_hit_rate(self) -> float:
        return self.memo.hit_rate

    def snapshot_json(self) -> str:
        """The byte-identical-at-any-jobs determinism artifact."""
        return json.dumps(
            {
                "ticks": self.ticks,
                "metrics": self.metrics,
                "members": [m.to_json() for m in self.members],
                "records": [r.deterministic() for r in self.records],
            },
            sort_keys=True,
            separators=(",", ":"),
        )


class EnsembleDriver:
    """Drive N members for T ticks with mid-flight events.

    Parameters
    ----------
    specs:
        One :class:`MemberSpec` per initial member (ids ``0..N-1``).
    policy:
        Pricing/memo policy shared by every member.
    jobs:
        Worker processes; ``1`` runs inline (the determinism oracle).
        ``None`` takes the ``REPRO_ENSEMBLE_JOBS`` environment default
        (itself 1), which is how CI sweeps whole test groups from the
        inline oracle to a worker pool without touching each call site.
    events:
        Scheduled kill/spawn/branch interventions.
    progress:
        Optional per-tick callback receiving an
        :class:`~repro.ensemble.dashboard.EnsembleProgress` frame.
    """

    def __init__(
        self,
        specs: Sequence[MemberSpec],
        *,
        policy: Optional[EnsemblePolicy] = None,
        jobs: Optional[int] = None,
        events: Sequence[EnsembleEvent] = (),
        progress: Optional[Callable[[EnsembleProgress], None]] = None,
    ):
        if not specs:
            raise ConfigurationError("ensemble needs at least one member spec")
        if jobs is None:
            raw = os.environ.get("REPRO_ENSEMBLE_JOBS", "1")
            try:
                jobs = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_ENSEMBLE_JOBS must be an integer, got {raw!r}"
                ) from None
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.specs = list(specs)
        self.policy = policy or EnsemblePolicy()
        self.policy.validate()
        self.jobs = jobs
        self.events = list(events)
        self.progress = progress
        self._schedule: Dict[int, List[EnsembleEvent]] = {}
        for event in self.events:
            self._schedule.setdefault(event.tick, []).append(event)

    # ------------------------------------------------------------------
    def run(self, ticks: int) -> EnsembleResult:
        if ticks < 1:
            raise ConfigurationError(f"ticks must be >= 1, got {ticks}")
        tr = tracer()
        t_start = time.perf_counter()
        shared: Optional[SharedMemoTable] = None
        if self.jobs > 1 and self.policy.memo:
            shared = SharedMemoTable.create(self.policy.memo_slots)
        queue = AffinityWorkQueue(
            self.jobs,
            initializer=runtime.init_worker,
            initargs=(
                self.policy,
                shared.handle if shared is not None else None,
                shared.lock if shared is not None else None,
            ),
        )
        try:
            return self._run(queue, ticks, t_start)
        finally:
            queue.close()
            if shared is not None:
                shared.release()

    # ------------------------------------------------------------------
    def _run(
        self, queue: AffinityWorkQueue, ticks: int, t_start: float
    ) -> EnsembleResult:
        tr = tracer()
        # Parent-side member ledger: id -> (worker, seed, alive).
        workers: Dict[int, int] = {}
        seeds: Dict[int, int] = {}
        alive: Dict[int, bool] = {}
        next_id = 0
        counts = {"spawned": 0, "killed": 0, "branched": 0}
        dead_summaries: Dict[int, MemberSummary] = {}
        # Per-member running totals for the dashboard.
        moved_totals: Dict[int, int] = {}
        replan_totals: Dict[int, int] = {}
        last_tick: Dict[int, MemberTick] = {}

        def place(member_id: int, spec: MemberSpec, seed, checkpoint) -> None:
            worker = queue.worker_for(member_id)
            workers[member_id] = worker
            seeds[member_id] = seed if seed is not None else spec.seed
            alive[member_id] = True
            moved_totals[member_id] = 0
            replan_totals[member_id] = 0
            queue.submit(
                member_id, runtime.create_members,
                ((member_id, spec, seed, checkpoint),),
            )

        with tr.span("ensemble.create", {"members": len(self.specs)} if tr.enabled else None):
            for spec in self.specs:
                place(next_id, spec, None, None)
                next_id += 1
            queue.gather()

        records: List[MemberTick] = []
        member_ticks = 0
        for tick in range(ticks):
            for event in self._schedule.get(tick, ()):
                _EVENTS_APPLIED.inc()
                if event.action == "kill":
                    if not alive.get(event.member, False):
                        raise ConfigurationError(
                            f"kill at tick {tick}: member {event.member} "
                            "is not alive"
                        )
                    queue.submit(
                        event.member, runtime.kill_member, event.member
                    )
                    summary = queue.gather()[0]
                    dead_summaries[event.member] = summary
                    alive[event.member] = False
                    counts["killed"] += 1
                elif event.action == "spawn":
                    seed = (
                        event.seed
                        if event.seed is not None
                        else branch_seed(self.specs[0].seed, next_id)
                    )
                    place(next_id, self.specs[0].with_seed(seed), None, None)
                    next_id += 1
                    counts["spawned"] += 1
                    queue.gather()
                elif event.action == "branch":
                    if not alive.get(event.member, False):
                        raise ConfigurationError(
                            f"branch at tick {tick}: member {event.member} "
                            "is not alive"
                        )
                    queue.submit(
                        event.member, runtime.checkpoint_member, event.member
                    )
                    checkpoint = queue.gather()[0]
                    child_seed = branch_seed(
                        checkpoint.seed, checkpoint.branch_count
                    )
                    place(next_id, checkpoint.spec, child_seed, checkpoint)
                    next_id += 1
                    counts["branched"] += 1
                    queue.gather()

            # One advance task per worker holding live members.
            by_worker: Dict[int, List[int]] = {}
            for member_id, is_alive in alive.items():
                if is_alive:
                    by_worker.setdefault(workers[member_id], []).append(member_id)
            with tr.span(
                "ensemble.tick",
                {"tick": tick, "alive": sum(alive.values())} if tr.enabled else None,
            ):
                for worker in sorted(by_worker):
                    queue.submit(
                        worker, runtime.advance_wave,
                        (tick, tuple(sorted(by_worker[worker]))),
                    )
                wave = [t for batch in queue.gather() for t in batch]
            wave.sort(key=lambda t: t.member_id)
            records.extend(wave)
            member_ticks += len(wave)
            _MEMBER_TICKS.inc(len(wave))
            _ALIVE_GAUGE.set(sum(alive.values()))
            for t in wave:
                moved_totals[t.member_id] += t.moved
                replan_totals[t.member_id] += t.replanned
                last_tick[t.member_id] = t
            if self.progress is not None:
                self.progress(
                    self._progress_frame(
                        tick, ticks, alive, counts, member_ticks,
                        time.perf_counter() - t_start,
                        moved_totals, replan_totals, last_tick, queue,
                    )
                )

        # Final summaries + worker diagnostics.
        for worker in range(queue.jobs):
            queue.submit(worker, runtime.live_summaries, None)
        live = [s for batch in queue.gather() for s in batch]
        for worker in range(queue.jobs):
            queue.submit(worker, runtime.collect_stats, None)
        stats = queue.gather()

        summaries = sorted(
            list(live) + list(dead_summaries.values()),
            key=lambda s: s.member_id,
        )
        memo = MemoStats()
        caches = {
            "plan_hits": 0, "plan_misses": 0,
            "placement_hits": 0, "placement_misses": 0,
        }
        for s in stats:
            memo.add(s["memo"])
            for key in caches:
                caches[key] += s[key]

        wall_s = time.perf_counter() - t_start
        records_tuple = tuple(
            sorted(records, key=lambda t: (t.tick, t.member_id))
        )
        metrics = _fold_metrics(
            records_tuple, summaries, ticks, len(self.specs), counts
        )
        return EnsembleResult(
            ticks=ticks,
            jobs=self.jobs,
            records=records_tuple,
            members=tuple(summaries),
            metrics=metrics,
            memo=memo,
            caches=caches,
            wall_s=wall_s,
            member_ticks=member_ticks,
        )

    # ------------------------------------------------------------------
    def _progress_frame(
        self, tick, ticks, alive, counts, member_ticks, wall_s,
        moved_totals, replan_totals, last_tick, queue,
    ) -> EnsembleProgress:
        rows = []
        for member_id in sorted(last_tick):
            t = last_tick[member_id]
            rows.append(
                MemberRow(
                    member_id=member_id,
                    alive=alive.get(member_id, False),
                    ticks=t.tick + 1,
                    sim_time_s=t.sim_time_s,
                    moved=moved_totals.get(member_id, 0),
                    replans=replan_totals.get(member_id, 0),
                    last_total_s=t.priced.par_total,
                    improvement=t.priced.improvement,
                )
            )
        return EnsembleProgress(
            tick=tick,
            ticks=ticks,
            jobs=queue.jobs,
            alive=sum(alive.values()),
            spawned=counts["spawned"],
            killed=counts["killed"],
            branched=counts["branched"],
            member_ticks=member_ticks,
            wall_s=wall_s,
            members_per_s=member_ticks / wall_s if wall_s > 0 else 0.0,
            rows=tuple(rows),
        )


def _fold_metrics(
    records: Tuple[MemberTick, ...],
    summaries: Sequence[MemberSummary],
    ticks: int,
    initial: int,
    counts: Dict[str, int],
) -> Dict[str, Dict[str, Any]]:
    """Registry-format snapshot folded in canonical record order.

    Records arrive already sorted ``(tick, member_id)``; every float
    fold below runs in that order, so the resulting doubles — and their
    JSON rendering — are identical at any worker count.
    """
    hist_counts = [0] * (len(_TICK_BOUNDS) + 1)
    hist_sum = 0.0
    sim_total = 0.0
    steer_total = 0.0
    features = moved = replans = 0
    for t in records:
        value = t.priced.par_total
        lo, hi = 0, len(_TICK_BOUNDS)
        while lo < hi:  # bisect_left over the fixed bounds
            mid = (lo + hi) // 2
            if _TICK_BOUNDS[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        hist_counts[lo] += 1
        hist_sum += value
        sim_total += t.priced.par_total + t.steer_model_s
        steer_total += t.steer_model_s
        features += t.features
        moved += t.moved
        replans += t.replanned
    max_sim = max((s.sim_time_s for s in summaries), default=0.0)

    def c(value: int) -> Dict[str, Any]:
        return {"type": "counter", "value": value}

    return {
        "ensemble.ticks": c(ticks),
        "ensemble.member_ticks": c(len(records)),
        "ensemble.members.initial": c(initial),
        "ensemble.members.spawned": c(counts["spawned"]),
        "ensemble.members.killed": c(counts["killed"]),
        "ensemble.members.branched": c(counts["branched"]),
        "ensemble.members.final_alive": c(
            sum(1 for s in summaries if s.alive)
        ),
        "ensemble.steer.features": c(features),
        "ensemble.steer.moves": c(moved),
        "ensemble.steer.replans": c(replans),
        "ensemble.sim_time.total_s": {
            "type": "gauge", "value": sim_total, "updates": len(records),
        },
        "ensemble.sim_time.max_s": {
            "type": "gauge", "value": max_sim, "updates": len(summaries),
        },
        "ensemble.steer.model_time_s": {
            "type": "gauge", "value": steer_total, "updates": len(records),
        },
        "ensemble.tick.par_total_s": {
            "type": "histogram",
            "bounds": list(_TICK_BOUNDS),
            "counts": hist_counts,
            "count": len(records),
            "sum": hist_sum,
        },
    }
