"""Cross-member memo: price each distinct nest state once per ensemble.

An ensemble clusters: members share initial seeds (scenario families),
branches start bit-identical to their parent, and trackers chasing the
same depressions converge onto the same nest footprints. Whenever two
members reach the same scheduling state, their pricing work — sequential
+ parallel plans, placement, routing, the whole
:func:`~repro.perfsim.simulate.simulate_iteration` pass — is *the same
pure function of the same inputs*. This module memoizes that function
across members and across pool workers:

* the **key** is a 16-byte blake2b digest of the full scheduling state:
  pricing policy (machine, mode, I/O model, mapping, process-grid dims)
  plus the parent spec and every sibling nest spec (footprint positions
  included). Keying by the complete state is deliberately conservative:
  a memo hit can never return a price the member could not have computed
  itself.
* the **value** is the fixed-width float64 vector of
  :class:`PricedState` — both strategies' phase totals. Float64 survives
  the shared table bit-exactly, so a member that *reads* a price folds
  the identical bits a member that *computed* it would have folded; the
  deterministic snapshot cannot tell the difference (that is the whole
  point).

Each worker holds a plain-dict local memo; when the ensemble runs with
``jobs > 1`` a :class:`SharedMemoTable` — an open-addressed digest→
vector table in one ``multiprocessing.shared_memory`` segment, guarded
by a single ``multiprocessing.Lock`` — lets worker A reuse what worker B
priced. Hit/miss counters are wall-side diagnostics (they depend on
which worker got there first), so they are reported next to, never
inside, the deterministic snapshot.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from multiprocessing import shared_memory
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.exec.shm import _attach_segment
from repro.wrf.grid import DomainSpec

__all__ = [
    "PricedState",
    "MemoStats",
    "SharedMemoHandle",
    "SharedMemoTable",
    "CrossMemberMemo",
    "state_digest",
]


@dataclass(frozen=True)
class PricedState:
    """Both strategies' phase totals for one scheduling state (model s)."""

    seq_total: float
    seq_integration: float
    seq_io: float
    seq_wait: float
    par_total: float
    par_parent: float
    par_nest_phase: float
    par_integration: float
    par_io: float
    par_wait: float
    par_hops: float

    @property
    def improvement(self) -> float:
        """Fractional speedup of parallel over sequential (paper Sec 5)."""
        if self.seq_total <= 0.0:
            return 0.0
        return (self.seq_total - self.par_total) / self.seq_total

    def to_vector(self) -> np.ndarray:
        return np.array(
            [getattr(self, f.name) for f in fields(self)], dtype=np.float64
        )

    @classmethod
    def from_vector(cls, vec: np.ndarray) -> "PricedState":
        return cls(*(float(v) for v in vec))

    @classmethod
    def from_reports(cls, seq: Any, par: Any) -> "PricedState":
        """Pack a sequential + parallel ``IterationReport`` pair."""
        return cls(
            seq_total=seq.total_time,
            seq_integration=seq.integration_time,
            seq_io=seq.io_time,
            seq_wait=seq.mpi_wait,
            par_total=par.total_time,
            par_parent=par.parent.total,
            par_nest_phase=par.nest_phase_time,
            par_integration=par.integration_time,
            par_io=par.io_time,
            par_wait=par.mpi_wait,
            par_hops=par.average_hops,
        )


VECTOR_LEN = len(fields(PricedState))
DIGEST_SIZE = 16

#: Give up after this many probe steps; the caller re-prices instead.
_PROBE_LIMIT = 128


def _spec_tuple(spec: DomainSpec) -> Tuple[Any, ...]:
    return (
        spec.name, spec.nx, spec.ny, spec.dx_km, spec.parent,
        spec.parent_start, spec.refinement, spec.level,
    )


def state_digest(
    policy_sig: Tuple[Any, ...],
    parent: DomainSpec,
    siblings: Sequence[DomainSpec],
) -> bytes:
    """16-byte digest of one member's complete scheduling state."""
    payload = repr(
        (policy_sig, _spec_tuple(parent), tuple(_spec_tuple(s) for s in siblings))
    ).encode()
    return hashlib.blake2b(payload, digest_size=DIGEST_SIZE).digest()


@dataclass
class MemoStats:
    """Memo traffic counters (diagnostics — not part of the snapshot)."""

    local_hits: int = 0
    shared_hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Inserts dropped because the shared table's probe window was full.
    shared_drops: int = 0

    @property
    def hits(self) -> int:
        return self.local_hits + self.shared_hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def add(self, other: "MemoStats") -> None:
        self.local_hits += other.local_hits
        self.shared_hits += other.shared_hits
        self.misses += other.misses
        self.stores += other.stores
        self.shared_drops += other.shared_drops

    def to_json(self) -> Dict[str, Any]:
        return {
            "local_hits": self.local_hits,
            "shared_hits": self.shared_hits,
            "misses": self.misses,
            "stores": self.stores,
            "shared_drops": self.shared_drops,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class SharedMemoHandle:
    """Picklable pointer to a shared memo segment (name + slot count)."""

    segment: str
    slots: int


class SharedMemoTable:
    """Open-addressed digest→vector table in shared memory.

    Layout: three parallel arrays over one segment — ``used`` flags
    (uint8), digests ``(slots, 16)`` uint8, values ``(slots, VECTOR_LEN)``
    float64. One ``multiprocessing.Lock`` serialises every get/put;
    entries are tiny and lookups rare (once per *distinct* state per
    worker), so a single lock is far from contended. Slots are never
    evicted — the table is sized for the run (a slot is ~110 bytes;
    the default 8192 slots cost under a megabyte).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        slots: int,
        lock: Any,
        *,
        owner: bool,
    ):
        self._shm = shm
        self.slots = slots
        self.lock = lock
        self._owner = owner
        self._used = np.ndarray((slots,), dtype=np.uint8, buffer=shm.buf)
        self._digests = np.ndarray(
            (slots, DIGEST_SIZE), dtype=np.uint8, buffer=shm.buf,
            offset=slots,
        )
        self._values = np.ndarray(
            (slots, VECTOR_LEN), dtype=np.float64, buffer=shm.buf,
            offset=self._values_offset(slots),
        )

    @staticmethod
    def _values_offset(slots: int) -> int:
        offset = slots + slots * DIGEST_SIZE
        return (offset + 7) // 8 * 8  # align float64 view

    @classmethod
    def _size_bytes(cls, slots: int) -> int:
        return cls._values_offset(slots) + slots * VECTOR_LEN * 8

    @classmethod
    def create(cls, slots: int = 8192) -> "SharedMemoTable":
        """Create (and own) a zero-initialised table; parent side."""
        if slots < 1:
            raise ConfigurationError(f"memo slots must be >= 1, got {slots}")
        import multiprocessing as mp

        shm = shared_memory.SharedMemory(
            create=True, size=cls._size_bytes(slots)
        )
        return cls(shm, slots, mp.Lock(), owner=True)

    @classmethod
    def attach(cls, handle: SharedMemoHandle, lock: Any) -> "SharedMemoTable":
        """Map an existing table; worker side (never unlinks)."""
        return cls(_attach_segment(handle.segment), handle.slots, lock, owner=False)

    @property
    def handle(self) -> SharedMemoHandle:
        return SharedMemoHandle(segment=self._shm.name, slots=self.slots)

    # ------------------------------------------------------------------
    def _probe(self, digest: bytes) -> Tuple[Optional[int], Optional[int]]:
        """(matching slot, first free slot) within the probe window."""
        key = np.frombuffer(digest, dtype=np.uint8)
        start = int.from_bytes(digest[:8], "little") % self.slots
        for step in range(min(self.slots, _PROBE_LIMIT)):
            idx = (start + step) % self.slots
            if not self._used[idx]:
                return None, idx
            if np.array_equal(self._digests[idx], key):
                return idx, None
        return None, None

    def get(self, digest: bytes) -> Optional[np.ndarray]:
        with self.lock:
            idx, _ = self._probe(digest)
            if idx is None:
                return None
            return self._values[idx].copy()

    def put(self, digest: bytes, vector: np.ndarray) -> bool:
        """Insert; returns False when the probe window is exhausted."""
        with self.lock:
            idx, free = self._probe(digest)
            if idx is not None:
                return True  # someone else priced it first — same bits
            if free is None:
                return False
            self._digests[free] = np.frombuffer(digest, dtype=np.uint8)
            self._values[free] = vector
            self._used[free] = 1
            return True

    def entries(self) -> int:
        with self.lock:
            return int(self._used.sum())

    # ------------------------------------------------------------------
    def close(self) -> None:
        # Drop the views before closing the mapping, else BufferError.
        self._used = self._digests = self._values = None  # type: ignore
        try:
            self._shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        """Destroy the segment; owner side only, after workers exit."""
        if not self._owner:
            return
        try:
            self._shm.unlink()
        except Exception:
            pass

    def release(self) -> None:
        self.close()
        self.unlink()


class CrossMemberMemo:
    """Two-level memo: per-worker dict in front of the shared table."""

    def __init__(self, shared: Optional[SharedMemoTable] = None):
        self.shared = shared
        self._local: Dict[bytes, PricedState] = {}
        self.stats = MemoStats()

    def lookup(self, digest: bytes) -> Optional[Tuple[PricedState, str]]:
        """The memoized price and where it came from, or ``None``."""
        priced = self._local.get(digest)
        if priced is not None:
            self.stats.local_hits += 1
            return priced, "local"
        if self.shared is not None:
            vec = self.shared.get(digest)
            if vec is not None:
                priced = PricedState.from_vector(vec)
                self._local[digest] = priced
                self.stats.shared_hits += 1
                return priced, "shared"
        self.stats.misses += 1
        return None

    def store(self, digest: bytes, priced: PricedState) -> None:
        self._local[digest] = priced
        self.stats.stores += 1
        if self.shared is not None:
            if not self.shared.put(digest, priced.to_vector()):
                self.stats.shared_drops += 1

    def entries(self) -> int:
        return len(self._local)
