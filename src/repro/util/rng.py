"""Deterministic random-number-generator construction.

Every stochastic component in the library (workload generators, basis-point
sampling) accepts either a seed or a ready ``numpy.random.Generator``. This
module centralises the conversion so experiments are reproducible by default.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["make_rng", "SeedLike"]

SeedLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 20121110  # SC'12 conference dates — arbitrary but fixed.


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for *seed*.

    ``None`` maps to a fixed library-wide default seed (experiments must be
    reproducible without ceremony); an existing generator is passed through
    unchanged so callers can share a stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
        raise TypeError(f"seed must be int, Generator or None, got {type(seed).__name__}")
    return np.random.default_rng(int(seed))
