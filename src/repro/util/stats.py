"""Tiny statistics helpers used by the experiment drivers.

Kept dependency-light on purpose: these operate on plain sequences so the
analysis layer never forces numpy arrays on callers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["mean", "geometric_mean", "percent_improvement", "summarize", "Summary"]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty input."""
    values = list(values)
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean() of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean() requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percent_improvement(baseline: float, improved: float) -> float:
    """Percentage reduction of *improved* relative to *baseline*.

    Positive means *improved* is faster (smaller). This matches the paper's
    convention: a drop from 1.1 s to 0.7 s is a 36.4% improvement.
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return 100.0 * (baseline - improved) / baseline


@dataclass(frozen=True)
class Summary:
    """Five-number style summary of a sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stdev: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g} sd={self.stdev:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summarise a non-empty sample of floats."""
    if not values:
        raise ValueError("summarize() of empty sequence")
    m = mean(values)
    var = sum((v - m) ** 2 for v in values) / len(values)
    return Summary(
        count=len(values),
        mean=m,
        minimum=min(values),
        maximum=max(values),
        stdev=math.sqrt(var),
    )
