"""Eager argument validation helpers.

These raise standard Python exceptions (``TypeError``/``ValueError``) rather
than :class:`repro.errors.ReproError` because a failed check indicates a
caller bug, not a domain condition the caller is expected to handle.
"""

from __future__ import annotations

from numbers import Integral, Real
from typing import Any

__all__ = [
    "check_positive_int",
    "check_positive_float",
    "check_in_range",
    "check_type",
]


def check_positive_int(value: Any, name: str) -> int:
    """Validate that *value* is a positive integer and return it as ``int``.

    Booleans are rejected even though ``bool`` subclasses ``int`` — passing
    ``True`` for a processor count is always a bug.
    """
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_positive_float(value: Any, name: str, *, allow_zero: bool = False) -> float:
    """Validate that *value* is a positive (or non-negative) real number."""
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if value != value:  # NaN
        raise ValueError(f"{name} must not be NaN")
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_in_range(value: Any, name: str, lo: float, hi: float) -> float:
    """Validate ``lo <= value <= hi`` and return the value as ``float``."""
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value


def check_type(value: Any, name: str, expected: type | tuple[type, ...]) -> Any:
    """Validate ``isinstance(value, expected)`` and return the value."""
    if not isinstance(value, expected):
        if isinstance(expected, tuple):
            names = ", ".join(t.__name__ for t in expected)
        else:
            names = expected.__name__
        raise TypeError(f"{name} must be {names}, got {type(value).__name__}")
    return value
