"""Small shared utilities: validation, RNG seeding, statistics helpers."""

from repro.util.validation import (
    check_positive_int,
    check_positive_float,
    check_in_range,
    check_type,
)
from repro.util.stats import mean, percent_improvement, geometric_mean, summarize
from repro.util.rng import make_rng

__all__ = [
    "check_positive_int",
    "check_positive_float",
    "check_in_range",
    "check_type",
    "mean",
    "percent_improvement",
    "geometric_mean",
    "summarize",
    "make_rng",
]
