"""The 2-D virtual process topology and rectangular sub-grids.

Ranks are laid out row-major in the ``Px x Py`` grid: rank ``r`` sits at
column ``px = r % Px`` and row ``py = r // Px``. This matches Fig 5(a) of
the paper, where ranks 0..7 form the first row of a ``Px = 8`` grid.

A :class:`GridRect` is an axis-aligned rectangle of grid positions — the
unit of processor allocation: each sibling nest receives one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import GeometryError
from repro.util.validation import check_positive_int

__all__ = ["GridRect", "ProcessGrid"]


@dataclass(frozen=True, order=True)
class GridRect:
    """A rectangle ``[x0, x0+w) x [y0, y0+h)`` of process-grid positions."""

    x0: int
    y0: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.x0 < 0 or self.y0 < 0:
            raise GeometryError(f"rectangle origin must be non-negative: {self}")
        check_positive_int(self.width, "width")
        check_positive_int(self.height, "height")

    # ------------------------------------------------------------------
    @property
    def area(self) -> int:
        """Number of grid positions covered."""
        return self.width * self.height

    @property
    def x1(self) -> int:
        """One past the right edge."""
        return self.x0 + self.width

    @property
    def y1(self) -> int:
        """One past the bottom edge."""
        return self.y0 + self.height

    @property
    def shape(self) -> Tuple[int, int]:
        """``(width, height)``."""
        return (self.width, self.height)

    def aspect_ratio(self) -> float:
        """``width / height`` — used to judge square-likeness."""
        return self.width / self.height

    def squareness(self) -> float:
        """``min(w, h) / max(w, h)`` in (0, 1]; 1.0 means a square."""
        return min(self.width, self.height) / max(self.width, self.height)

    def contains(self, px: int, py: int) -> bool:
        """Whether grid position ``(px, py)`` lies inside this rectangle."""
        return self.x0 <= px < self.x1 and self.y0 <= py < self.y1

    def overlaps(self, other: "GridRect") -> bool:
        """Whether two rectangles share any grid position."""
        return not (
            self.x1 <= other.x0
            or other.x1 <= self.x0
            or self.y1 <= other.y0
            or other.y1 <= self.y0
        )

    def positions(self) -> Iterator[Tuple[int, int]]:
        """All covered positions, row-major."""
        for py in range(self.y0, self.y1):
            for px in range(self.x0, self.x1):
                yield (px, py)

    def split_horizontal(self, left_width: int) -> Tuple["GridRect", "GridRect"]:
        """Cut vertically into a left part of *left_width* columns and the rest."""
        if not (0 < left_width < self.width):
            raise GeometryError(
                f"left_width {left_width} must be inside (0, {self.width})"
            )
        left = GridRect(self.x0, self.y0, left_width, self.height)
        right = GridRect(self.x0 + left_width, self.y0, self.width - left_width, self.height)
        return left, right

    def split_vertical(self, top_height: int) -> Tuple["GridRect", "GridRect"]:
        """Cut horizontally into a top part of *top_height* rows and the rest."""
        if not (0 < top_height < self.height):
            raise GeometryError(
                f"top_height {top_height} must be inside (0, {self.height})"
            )
        top = GridRect(self.x0, self.y0, self.width, top_height)
        bottom = GridRect(self.x0, self.y0 + top_height, self.width, self.height - top_height)
        return top, bottom


class ProcessGrid:
    """A ``Px x Py`` virtual 2-D process topology.

    Parameters
    ----------
    px, py:
        Grid extents. The total rank count is ``px * py``.
    """

    __slots__ = ("_px", "_py")

    def __init__(self, px: int, py: int):
        self._px = check_positive_int(px, "px")
        self._py = check_positive_int(py, "py")

    @property
    def px(self) -> int:
        """Number of columns (x extent)."""
        return self._px

    @property
    def py(self) -> int:
        """Number of rows (y extent)."""
        return self._py

    @property
    def size(self) -> int:
        """Total number of ranks."""
        return self._px * self._py

    @property
    def shape(self) -> Tuple[int, int]:
        """``(px, py)``."""
        return (self._px, self._py)

    def __repr__(self) -> str:
        return f"ProcessGrid({self._px}x{self._py})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ProcessGrid) and other.shape == self.shape

    def __hash__(self) -> int:
        return hash(("ProcessGrid", self.shape))

    # ------------------------------------------------------------------
    # Rank <-> position
    # ------------------------------------------------------------------
    def rank_of(self, px: int, py: int) -> int:
        """World rank at grid position ``(px, py)`` (row-major)."""
        if not (0 <= px < self._px and 0 <= py < self._py):
            raise GeometryError(f"position ({px}, {py}) outside grid {self.shape}")
        return py * self._px + px

    def position_of(self, rank: int) -> Tuple[int, int]:
        """Grid position of *rank*."""
        if not (0 <= rank < self.size):
            raise GeometryError(f"rank {rank} outside grid of {self.size} ranks")
        return (rank % self._px, rank // self._px)

    def full_rect(self) -> GridRect:
        """The rectangle covering the whole grid."""
        return GridRect(0, 0, self._px, self._py)

    # ------------------------------------------------------------------
    # Neighbourhood
    # ------------------------------------------------------------------
    def neighbors_of(self, rank: int, within: GridRect | None = None) -> List[int]:
        """The 4-neighbourhood of *rank* (W, E, N, S), optionally clipped.

        When *within* is given, only neighbours inside that rectangle are
        reported — this is the neighbourhood a rank sees through its nest
        sub-communicator. Domain-boundary ranks simply have fewer
        neighbours (WRF nests have open boundaries, not periodic ones).
        """
        px, py = self.position_of(rank)
        rect = within if within is not None else self.full_rect()
        if not rect.contains(px, py):
            raise GeometryError(f"rank {rank} at ({px},{py}) not inside {rect}")
        out: List[int] = []
        for dx, dy in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nx, ny = px + dx, py + dy
            if rect.contains(nx, ny):
                out.append(self.rank_of(nx, ny))
        return out

    def ranks_in(self, rect: GridRect) -> List[int]:
        """World ranks covered by *rect*, row-major within the rectangle."""
        if rect.x1 > self._px or rect.y1 > self._py:
            raise GeometryError(f"{rect} exceeds grid {self.shape}")
        return [self.rank_of(px, py) for (px, py) in rect.positions()]
