"""Halo-exchange specification.

Each WRF integration step performs many point-to-point halo exchanges: the
paper reports 144 messages per step with the four neighbouring processes
(Sec 3.3), i.e. 36 exchange *rounds* of 4 directional messages. A message
to an east/west neighbour carries a strip of ``tile_height x halo_width``
columns over all vertical levels and exchanged variables; north/south
messages carry ``tile_width x halo_width`` rows.

This module turns a (domain, sub-grid rectangle) pair into the explicit
list of :class:`HaloMessage` objects of one exchange round. The network
simulator routes each message over the torus and the cost model multiplies
by the number of rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.runtime.decomposition import decompose
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.util.validation import check_positive_int

__all__ = ["HaloSpec", "HaloMessage", "halo_messages"]

#: Paper Sec 3.3: "each integration time-step involves 144 message
#: exchanges with the four neighbouring processes".
MESSAGES_PER_STEP = 144
DIRECTIONS = 4
ROUNDS_PER_STEP = MESSAGES_PER_STEP // DIRECTIONS  # 36 exchange rounds


@dataclass(frozen=True)
class HaloSpec:
    """Shape parameters of the halo exchange of one simulated model.

    Attributes
    ----------
    width:
        Halo width in grid points. WRF's stencils exchange mostly 2- and
        3-point halos (only a few fields need 5), so 3 is the effective
        width of an average exchange round.
    levels:
        Number of vertical levels in the 3-D fields being exchanged.
    bytes_per_value:
        8 for double precision.
    rounds_per_step:
        Number of 4-message exchange rounds per integration step.
    """

    width: int = 3
    levels: int = 35
    bytes_per_value: int = 8
    rounds_per_step: int = ROUNDS_PER_STEP

    def __post_init__(self) -> None:
        check_positive_int(self.width, "width")
        check_positive_int(self.levels, "levels")
        check_positive_int(self.bytes_per_value, "bytes_per_value")
        check_positive_int(self.rounds_per_step, "rounds_per_step")

    def strip_bytes(self, edge_points: int) -> int:
        """Bytes of one directional halo strip along an edge of *edge_points*."""
        return edge_points * self.width * self.levels * self.bytes_per_value


@dataclass(frozen=True)
class HaloMessage:
    """One directional halo message between world ranks in one round."""

    src: int
    dst: int
    nbytes: int


def halo_messages(
    grid: ProcessGrid,
    rect: GridRect,
    nx: int,
    ny: int,
    spec: HaloSpec,
) -> List[HaloMessage]:
    """All messages of one halo-exchange round of a nest on *rect*.

    The nest's ``nx x ny`` domain is block-decomposed over the rectangle's
    ``width x height`` sub-grid. Every rank sends to each existing
    neighbour (boundary tiles have fewer neighbours). Message sizes use
    the *sender's* tile edge, matching how WRF packs its halo strips.
    """
    dec = decompose(nx, ny, rect.width, rect.height)
    msgs: List[HaloMessage] = []
    for py in range(rect.height):
        for px in range(rect.width):
            src = grid.rank_of(rect.x0 + px, rect.y0 + py)
            w = dec.col_widths[px]
            h = dec.row_heights[py]
            # East/west messages carry a vertical strip of `h` points.
            for dx in (-1, 1):
                qx = px + dx
                if 0 <= qx < rect.width:
                    dst = grid.rank_of(rect.x0 + qx, rect.y0 + py)
                    msgs.append(HaloMessage(src, dst, spec.strip_bytes(h)))
            # North/south messages carry a horizontal strip of `w` points.
            for dy in (-1, 1):
                qy = py + dy
                if 0 <= qy < rect.height:
                    dst = grid.rank_of(rect.x0 + px, rect.y0 + qy)
                    msgs.append(HaloMessage(src, dst, spec.strip_bytes(w)))
    return msgs
