"""Halo-exchange specification.

Each WRF integration step performs many point-to-point halo exchanges: the
paper reports 144 messages per step with the four neighbouring processes
(Sec 3.3), i.e. 36 exchange *rounds* of 4 directional messages. A message
to an east/west neighbour carries a strip of ``tile_height x halo_width``
columns over all vertical levels and exchanged variables; north/south
messages carry ``tile_width x halo_width`` rows.

This module turns a (domain, sub-grid rectangle) pair into the messages
of one exchange round, in two equivalent forms: the explicit list of
:class:`HaloMessage` objects (the scalar parity oracle) and the
:class:`HaloBatch` column arrays built in one shot by
:func:`halo_messages_array` from the decomposition's row/column edge
vectors. :func:`halo_batch` dispatches on ``REPRO_PLACEMENT``; both
orders and values are bit-identical, so either form keys the network
engine's route cache the same way. The network simulator routes each
message over the torus and the cost model multiplies by the number of
rounds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.runtime.backend import placement_backend
from repro.runtime.decomposition import decompose
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.util.validation import check_positive_int

__all__ = [
    "HaloSpec",
    "HaloMessage",
    "HaloBatch",
    "halo_messages",
    "halo_messages_array",
    "halo_batch",
]

#: Paper Sec 3.3: "each integration time-step involves 144 message
#: exchanges with the four neighbouring processes".
MESSAGES_PER_STEP = 144
DIRECTIONS = 4
ROUNDS_PER_STEP = MESSAGES_PER_STEP // DIRECTIONS  # 36 exchange rounds


@dataclass(frozen=True)
class HaloSpec:
    """Shape parameters of the halo exchange of one simulated model.

    Attributes
    ----------
    width:
        Halo width in grid points. WRF's stencils exchange mostly 2- and
        3-point halos (only a few fields need 5), so 3 is the effective
        width of an average exchange round.
    levels:
        Number of vertical levels in the 3-D fields being exchanged.
    bytes_per_value:
        8 for double precision.
    rounds_per_step:
        Number of 4-message exchange rounds per integration step.
    """

    width: int = 3
    levels: int = 35
    bytes_per_value: int = 8
    rounds_per_step: int = ROUNDS_PER_STEP

    def __post_init__(self) -> None:
        check_positive_int(self.width, "width")
        check_positive_int(self.levels, "levels")
        check_positive_int(self.bytes_per_value, "bytes_per_value")
        check_positive_int(self.rounds_per_step, "rounds_per_step")

    def strip_bytes(self, edge_points: int) -> int:
        """Bytes of one directional halo strip along an edge of *edge_points*."""
        return edge_points * self.width * self.levels * self.bytes_per_value


@dataclass(frozen=True)
class HaloMessage:
    """One directional halo message between world ranks in one round."""

    src: int
    dst: int
    nbytes: int


@dataclass(frozen=True)
class HaloBatch:
    """One exchange round as ``(src, dst, nbytes)`` column arrays.

    The array form of a :func:`halo_messages` list: ``int64`` columns in
    the exact message order of the scalar builder (row-major cells, each
    emitting west, east, north, south). All arrays are read-only so
    batches can be shared and cached safely.
    """

    src: np.ndarray
    dst: np.ndarray
    nbytes: np.ndarray

    def __post_init__(self) -> None:
        for arr in (self.src, self.dst, self.nbytes):
            arr.flags.writeable = False

    def __len__(self) -> int:
        return len(self.src)

    def digest(self) -> bytes:
        """Digest of the column bytes; keys the network route cache.

        Identical to hashing the equivalent message list's columns, so
        list, batch, and shared-memory forms of one round share cache
        entries. Memoised on first use (the arrays are read-only);
        shared-memory consumers pre-seed it from the segment metadata so
        attaching never rehashes the columns (see :mod:`repro.exec.shm`).
        """
        cached = getattr(self, "_digest", None)
        if cached is not None:
            return cached
        h = hashlib.blake2b(digest_size=16)
        h.update(self.src.tobytes())
        h.update(self.dst.tobytes())
        h.update(self.nbytes.tobytes())
        value = h.digest()
        object.__setattr__(self, "_digest", value)
        return value

    def to_messages(self) -> List[HaloMessage]:
        """Materialise the equivalent :class:`HaloMessage` objects."""
        return [
            HaloMessage(s, d, b)
            for s, d, b in zip(
                self.src.tolist(), self.dst.tolist(), self.nbytes.tolist()
            )
        ]

    @classmethod
    def from_messages(cls, messages: List[HaloMessage]) -> "HaloBatch":
        """Column arrays of an existing message list (parity tests)."""
        n = len(messages)
        return cls(
            src=np.fromiter((m.src for m in messages), dtype=np.int64, count=n),
            dst=np.fromiter((m.dst for m in messages), dtype=np.int64, count=n),
            nbytes=np.fromiter((m.nbytes for m in messages), dtype=np.int64, count=n),
        )


def halo_messages(
    grid: ProcessGrid,
    rect: GridRect,
    nx: int,
    ny: int,
    spec: HaloSpec,
) -> List[HaloMessage]:
    """All messages of one halo-exchange round of a nest on *rect*.

    The nest's ``nx x ny`` domain is block-decomposed over the rectangle's
    ``width x height`` sub-grid. Every rank sends to each existing
    neighbour (boundary tiles have fewer neighbours). Message sizes use
    the *sender's* tile edge, matching how WRF packs its halo strips.
    """
    dec = decompose(nx, ny, rect.width, rect.height)
    msgs: List[HaloMessage] = []
    for py in range(rect.height):
        for px in range(rect.width):
            src = grid.rank_of(rect.x0 + px, rect.y0 + py)
            w = dec.col_widths[px]
            h = dec.row_heights[py]
            # East/west messages carry a vertical strip of `h` points.
            for dx in (-1, 1):
                qx = px + dx
                if 0 <= qx < rect.width:
                    dst = grid.rank_of(rect.x0 + qx, rect.y0 + py)
                    msgs.append(HaloMessage(src, dst, spec.strip_bytes(h)))
            # North/south messages carry a horizontal strip of `w` points.
            for dy in (-1, 1):
                qy = py + dy
                if 0 <= qy < rect.height:
                    dst = grid.rank_of(rect.x0 + px, rect.y0 + qy)
                    msgs.append(HaloMessage(src, dst, spec.strip_bytes(w)))
    return msgs


def halo_messages_array(
    grid: ProcessGrid,
    rect: GridRect,
    nx: int,
    ny: int,
    spec: HaloSpec,
) -> HaloBatch:
    """One exchange round as column arrays, built without a Python loop.

    Bit-identical to :func:`halo_messages` (same message order, same
    integer sizes): per-cell candidate arrays for the four directions are
    stacked as ``(rows, cols, 4)`` and flattened in C order — exactly the
    scalar builder's row-major cell walk with its west, east, north,
    south emission order — then masked down to the neighbours that exist.
    """
    dec = decompose(nx, ny, rect.width, rect.height)
    w, h = rect.width, rect.height
    px_full = grid.px

    col_w = np.asarray(dec.col_widths, dtype=np.int64)
    row_h = np.asarray(dec.row_heights, dtype=np.int64)
    strip = spec.width * spec.levels * spec.bytes_per_value
    ew_bytes = row_h * strip  # east/west strips carry the tile height
    ns_bytes = col_w * strip  # north/south strips carry the tile width

    gx = rect.x0 + np.arange(w, dtype=np.int64)
    gy = rect.y0 + np.arange(h, dtype=np.int64)
    ranks = gy[:, None] * px_full + gx[None, :]  # (h, w), row-major ranks

    # Candidate (dst, nbytes, valid) per direction, scalar emission order:
    # west (px-1), east (px+1), north (py-1), south (py+1).
    dst = np.stack(
        [ranks - 1, ranks + 1, ranks - px_full, ranks + px_full], axis=2
    )
    in_w = np.arange(w) > 0
    in_e = np.arange(w) < w - 1
    in_n = np.arange(h) > 0
    in_s = np.arange(h) < h - 1
    valid = np.empty((h, w, 4), dtype=bool)
    valid[:, :, 0] = in_w[None, :]
    valid[:, :, 1] = in_e[None, :]
    valid[:, :, 2] = in_n[:, None]
    valid[:, :, 3] = in_s[:, None]
    nbytes = np.empty((h, w, 4), dtype=np.int64)
    nbytes[:, :, 0] = ew_bytes[:, None]
    nbytes[:, :, 1] = ew_bytes[:, None]
    nbytes[:, :, 2] = ns_bytes[None, :]
    nbytes[:, :, 3] = ns_bytes[None, :]
    src = np.broadcast_to(ranks[:, :, None], (h, w, 4))

    keep = valid.ravel()
    return HaloBatch(
        src=src.reshape(-1)[keep],
        dst=dst.reshape(-1)[keep],
        nbytes=nbytes.reshape(-1)[keep],
    )


def halo_batch(
    grid: ProcessGrid,
    rect: GridRect,
    nx: int,
    ny: int,
    spec: HaloSpec,
) -> HaloBatch:
    """The exchange round in batch form, built by the active backend.

    ``REPRO_PLACEMENT=vector`` (default) builds the columns directly;
    the scalar oracle builds the object list and converts, so both
    backends hand downstream consumers identical arrays.
    """
    if placement_backend() == "vector":
        return halo_messages_array(grid, rect, nx, ny, spec)
    return HaloBatch.from_messages(halo_messages(grid, rect, nx, ny, spec))
