"""Backend selection for the placement & halo construction pipeline.

The scenario-construction layer (placements, halo message sets, mapping
metrics) has two implementations: the NumPy array pipeline (default) and
the original scalar Python code, kept as a parity oracle. Selection
mirrors the network engine's ``REPRO_NETSIM`` switch:

    REPRO_PLACEMENT=vector   # default: array pipeline
    REPRO_PLACEMENT=scalar   # per-rank / per-message Python loops

Both produce bit-identical results — hops and byte counts are integers,
so parity is exact equality, enforced by the hypothesis suite in
``tests/core/mapping/test_placement_parity.py`` and
``tests/runtime/test_halo_batch_parity.py``.

This module sits at the bottom of the runtime layer (no repro imports
beyond errors) so both ``repro.runtime.halo`` and ``repro.core.mapping``
can dispatch through it without import cycles.
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError

__all__ = ["PLACEMENT_BACKENDS", "placement_backend"]

#: Recognised values of ``REPRO_PLACEMENT``.
PLACEMENT_BACKENDS = ("vector", "scalar")


def placement_backend() -> str:
    """The placement-pipeline backend selected by ``REPRO_PLACEMENT``.

    Returns ``"vector"`` (default) or ``"scalar"``; raises
    :class:`~repro.errors.ConfigurationError` on anything else, matching
    :func:`repro.netsim.engine.active_backend`.
    """
    name = os.environ.get("REPRO_PLACEMENT", "vector").strip().lower() or "vector"
    if name not in PLACEMENT_BACKENDS:
        raise ConfigurationError(
            f"REPRO_PLACEMENT={name!r}: expected one of {sorted(PLACEMENT_BACKENDS)}"
        )
    return name
