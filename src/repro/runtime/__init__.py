"""Virtual MPI-like runtime: process grids, communicators, decomposition.

WRF lays its MPI ranks out as a 2-D virtual process grid ``Px x Py`` and
block-decomposes each simulation domain over it. The paper's allocator
carves this grid into disjoint rectangular sub-grids (one per sibling nest)
and gives each sibling its own sub-communicator. This package provides that
abstraction without a real MPI underneath:

* :class:`~repro.runtime.process_grid.ProcessGrid` — the Px x Py grid,
  rank/coordinate conversion, neighbourhoods, rectangular sub-grids.
* :class:`~repro.runtime.communicator.Communicator` — a rank set with world
  <-> local translation, mirroring ``MPI_COMM_WORLD`` vs per-nest
  sub-communicators.
* :mod:`~repro.runtime.decomposition` — remainder-aware block decomposition
  of an ``nx x ny`` domain over a grid, and the WRF-style choice of a
  near-square process grid for a rank count.
* :mod:`~repro.runtime.halo` — halo-exchange specification (who talks to
  whom, with how many bytes) consumed by the network simulator.
"""

from repro.runtime.process_grid import ProcessGrid, GridRect
from repro.runtime.communicator import Communicator
from repro.runtime.decomposition import (
    BlockDecomposition,
    decompose,
    choose_process_grid,
    tile_dims,
)
from repro.runtime.halo import HaloSpec, HaloMessage, halo_messages

__all__ = [
    "ProcessGrid",
    "GridRect",
    "Communicator",
    "BlockDecomposition",
    "decompose",
    "choose_process_grid",
    "tile_dims",
    "HaloSpec",
    "HaloMessage",
    "halo_messages",
]
