"""Simulated MPI communicators over the virtual process grid.

The default WRF strategy runs every nest on ``MPI_COMM_WORLD``; the paper's
strategy creates one sub-communicator per sibling over the ranks of its
allocated :class:`~repro.runtime.process_grid.GridRect`. This class captures
just the part the schedulers and the cost simulator need: the member rank
set and world <-> local rank translation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.runtime.process_grid import GridRect, ProcessGrid

__all__ = ["Communicator"]


class Communicator:
    """An ordered set of world ranks with local numbering.

    Local ranks are assigned in the order *ranks* is given, mirroring
    ``MPI_Comm_create`` over an ``MPI_Group`` built from a rank list.
    """

    __slots__ = ("_grid", "_ranks", "_index", "_rect", "_name")

    def __init__(
        self,
        grid: ProcessGrid,
        ranks: Sequence[int],
        *,
        rect: Optional[GridRect] = None,
        name: str = "comm",
    ):
        if not ranks:
            raise ConfigurationError("a communicator needs at least one rank")
        seen = set()
        for r in ranks:
            if not (0 <= r < grid.size):
                raise ConfigurationError(f"rank {r} outside grid of {grid.size} ranks")
            if r in seen:
                raise ConfigurationError(f"duplicate rank {r} in communicator")
            seen.add(r)
        self._grid = grid
        self._ranks = list(ranks)
        self._index = {r: i for i, r in enumerate(self._ranks)}
        self._rect = rect
        self._name = name

    # ------------------------------------------------------------------
    @classmethod
    def world(cls, grid: ProcessGrid) -> "Communicator":
        """The analogue of ``MPI_COMM_WORLD`` for *grid*."""
        return cls(grid, list(range(grid.size)), rect=grid.full_rect(), name="world")

    @classmethod
    def for_rect(cls, grid: ProcessGrid, rect: GridRect, *, name: str = "nest") -> "Communicator":
        """Sub-communicator over the ranks of a rectangular allocation."""
        return cls(grid, grid.ranks_in(rect), rect=rect, name=name)

    # ------------------------------------------------------------------
    @property
    def grid(self) -> ProcessGrid:
        """The underlying world process grid."""
        return self._grid

    @property
    def size(self) -> int:
        """Number of member ranks."""
        return len(self._ranks)

    @property
    def name(self) -> str:
        """Human-readable communicator label."""
        return self._name

    @property
    def rect(self) -> Optional[GridRect]:
        """The grid rectangle this communicator covers, if rectangular."""
        return self._rect

    @property
    def world_ranks(self) -> List[int]:
        """Member world ranks in local-rank order (a copy)."""
        return list(self._ranks)

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._index

    def __len__(self) -> int:
        return len(self._ranks)

    def __repr__(self) -> str:
        return f"Communicator({self._name!r}, size={self.size})"

    # ------------------------------------------------------------------
    def local_rank(self, world_rank: int) -> int:
        """Translate a world rank to this communicator's local rank."""
        try:
            return self._index[world_rank]
        except KeyError:
            raise ConfigurationError(
                f"world rank {world_rank} is not a member of {self._name!r}"
            ) from None

    def world_rank(self, local_rank: int) -> int:
        """Translate a local rank back to the world rank."""
        if not (0 <= local_rank < self.size):
            raise ConfigurationError(
                f"local rank {local_rank} outside communicator of size {self.size}"
            )
        return self._ranks[local_rank]

    def translate(self, world_ranks: Iterable[int]) -> List[int]:
        """Vector form of :meth:`local_rank`."""
        return [self.local_rank(r) for r in world_ranks]
