"""Block decomposition of a 2-D domain over a process grid.

WRF distributes an ``nx x ny`` domain over a ``Px x Py`` process grid by
giving each rank a contiguous tile of roughly ``nx/Px x ny/Py`` points
(paper Sec 3.2). Remainder points go to the low-index rows/columns, so the
*maximum* tile — which sets the pace of a bulk-synchronous step — is
``ceil(nx/Px) x ceil(ny/Py)``.

Also provided is the WRF-style factorisation of a rank count into a
near-square process grid (``choose_process_grid``), optionally biased
toward the domain's aspect ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.util.validation import check_positive_int

__all__ = [
    "BlockDecomposition",
    "DecomposeCacheStats",
    "decompose",
    "decompose_cache_stats",
    "reset_decompose_cache",
    "choose_process_grid",
    "tile_dims",
    "split_counts",
]


def split_counts(n: int, parts: int) -> List[int]:
    """Split *n* points into *parts* contiguous blocks as evenly as possible.

    The first ``n % parts`` blocks get the extra point, matching WRF's
    decomposition. Every block is non-empty when ``parts <= n``; otherwise a
    :class:`~repro.errors.ConfigurationError` is raised because WRF cannot
    run with empty tiles.
    """
    check_positive_int(n, "n")
    check_positive_int(parts, "parts")
    if parts > n:
        raise ConfigurationError(f"cannot split {n} points into {parts} non-empty blocks")
    base, extra = divmod(n, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def tile_dims(nx: int, ny: int, px: int, py: int) -> Tuple[int, int]:
    """The dimensions of the *largest* tile: ``(ceil(nx/px), ceil(ny/py))``."""
    check_positive_int(nx, "nx")
    check_positive_int(ny, "ny")
    check_positive_int(px, "px")
    check_positive_int(py, "py")
    return (-(-nx // px), -(-ny // py))


@dataclass(frozen=True)
class BlockDecomposition:
    """A full block decomposition of an ``nx x ny`` domain over ``px x py``."""

    nx: int
    ny: int
    px: int
    py: int
    #: Per-column tile widths (length px) and per-row tile heights (length py).
    col_widths: Tuple[int, ...]
    row_heights: Tuple[int, ...]

    @property
    def max_tile(self) -> Tuple[int, int]:
        """``(max width, max height)`` over all tiles."""
        return (max(self.col_widths), max(self.row_heights))

    @property
    def min_tile(self) -> Tuple[int, int]:
        """``(min width, min height)`` over all tiles."""
        return (min(self.col_widths), min(self.row_heights))

    def tile_of(self, ppx: int, ppy: int) -> Tuple[int, int, int, int]:
        """``(i0, j0, w, h)`` of the tile owned by grid position (ppx, ppy)."""
        if not (0 <= ppx < self.px and 0 <= ppy < self.py):
            raise ConfigurationError(f"position ({ppx},{ppy}) outside {self.px}x{self.py}")
        i0 = sum(self.col_widths[:ppx])
        j0 = sum(self.row_heights[:ppy])
        return (i0, j0, self.col_widths[ppx], self.row_heights[ppy])

    def load_imbalance(self) -> float:
        """``max_tile_area / mean_tile_area - 1`` (0.0 means perfectly even)."""
        mw, mh = self.max_tile
        mean = (self.nx * self.ny) / (self.px * self.py)
        return (mw * mh) / mean - 1.0


@lru_cache(maxsize=4096)
def decompose(nx: int, ny: int, px: int, py: int) -> BlockDecomposition:
    """Block-decompose an ``nx x ny`` domain over a ``px x py`` grid.

    Memoized: a pure function of four ints that every halo-message build
    of the same rectangle used to recompute. The returned decomposition
    is frozen and shared between callers; use
    :func:`reset_decompose_cache` for test isolation and
    :func:`decompose_cache_stats` for the counters.
    """
    return BlockDecomposition(
        nx=nx,
        ny=ny,
        px=px,
        py=py,
        col_widths=tuple(split_counts(nx, px)),
        row_heights=tuple(split_counts(ny, py)),
    )


@dataclass(frozen=True)
class DecomposeCacheStats:
    """Decompose-cache counters (same shape as the plan-cache stats)."""

    hits: int
    misses: int
    entries: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def decompose_cache_stats() -> DecomposeCacheStats:
    """Current :func:`decompose` cache counters."""
    info = decompose.cache_info()
    return DecomposeCacheStats(
        hits=info.hits, misses=info.misses, entries=info.currsize
    )


def reset_decompose_cache() -> None:
    """Drop all cached decompositions and zero the counters (tests)."""
    decompose.cache_clear()


def choose_process_grid(
    num_ranks: int, *, domain_aspect: float = 1.0
) -> Tuple[int, int]:
    """Factor *num_ranks* into ``(Px, Py)`` best matching *domain_aspect*.

    WRF picks the factorisation of the rank count whose grid aspect ratio
    ``Px/Py`` is closest to the domain aspect ratio ``nx/ny`` so tiles come
    out square-like. Ties break toward the more square grid.
    """
    check_positive_int(num_ranks, "num_ranks")
    if domain_aspect <= 0 or domain_aspect != domain_aspect:
        raise ConfigurationError(f"domain_aspect must be positive, got {domain_aspect}")
    best: Tuple[int, int] | None = None
    best_key: Tuple[float, float] | None = None
    for px in range(1, num_ranks + 1):
        if num_ranks % px:
            continue
        py = num_ranks // px
        # Compare aspect ratios in log space so 2x-off is symmetric
        # whichever side it falls on.
        mismatch = abs(math.log(px / py) - math.log(domain_aspect))
        spread = abs(math.log(px / py))
        key = (mismatch, spread)
        if best_key is None or key < best_key:
            best_key = key
            best = (px, py)
    assert best is not None
    return best
