"""Parallel-I/O cost models.

The paper observed that PnetCDF collective writes scale *badly* with rank
count (per-iteration I/O time rises as processors are added — Fig 13(b))
and that the parallel-siblings strategy relieves this because each
sibling's history file is written by only its own sub-communicator.

* :func:`pnetcdf_write_time` — collective write cost: per-writer metadata
  and synchronisation cost (grows linearly with writers) plus data volume
  over an aggregate bandwidth that saturates.
* :func:`split_write_time` — WRF's BG/L "split I/O": every rank writes a
  private file; no coordination cost, but fixed per-file overhead.
"""

from repro.iosim.pnetcdf import pnetcdf_write_time
from repro.iosim.split_io import split_write_time
from repro.iosim.model import IoModel, IoCost

__all__ = ["pnetcdf_write_time", "split_write_time", "IoModel", "IoCost"]
