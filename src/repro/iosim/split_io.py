"""Split-I/O cost model (WRF ``io_form`` split output, used on BG/L).

Every rank writes its own tile to a private file: no inter-rank
coordination, so cost is the per-file open/close overhead plus the
rank-local data over the per-writer bandwidth — but the file system still
caps aggregate throughput when all ranks write at once.
"""

from __future__ import annotations

from repro.topology.machines import Machine
from repro.util.validation import check_positive_float, check_positive_int

__all__ = ["split_write_time"]

#: Fixed cost of creating/opening one file per rank per history write.
FILE_OVERHEAD = 0.02


def split_write_time(num_writers: int, nbytes: float, machine: Machine) -> float:
    """Seconds for *num_writers* ranks to write *nbytes* total, one file each."""
    check_positive_int(num_writers, "num_writers")
    check_positive_float(nbytes, "nbytes", allow_zero=True)
    if nbytes == 0.0:
        return FILE_OVERHEAD
    per_rank = nbytes / num_writers
    effective_bw = min(
        machine.io_per_writer_bandwidth,
        machine.io_bandwidth_max / num_writers,
    )
    return FILE_OVERHEAD + per_rank / effective_bw
