"""High-level I/O model used by the performance simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

from repro.errors import ConfigurationError
from repro.iosim.pnetcdf import pnetcdf_write_time
from repro.iosim.split_io import split_write_time
from repro.obs.metrics import counter as _obs_counter
from repro.obs.metrics import histogram as _obs_histogram
from repro.topology.machines import Machine

__all__ = ["IoCost", "IoModel"]

# Observability: one event counter, one byte counter, and a model-time
# histogram (simulated seconds, decade buckets from 1 ms to 10^4 s) per
# history-write event. Bound once; registry resets zero them in place.
_IO_EVENTS = _obs_counter("iosim.events")
_IO_BYTES = _obs_counter("iosim.bytes")
_IO_EVENT_TIME = _obs_histogram(
    "iosim.event_time_s", [10.0 ** k for k in range(-3, 5)]
)


@dataclass(frozen=True)
class IoCost:
    """I/O cost of one history-write event."""

    #: Wall time of the whole event.
    time: float
    #: Per-file times in domain order (parent first).
    per_file: tuple[float, ...]


class IoModel:
    """History-output cost for a nested run.

    Parameters
    ----------
    method:
        ``"pnetcdf"`` (collective, the BG/P runs) or ``"split"``
        (file-per-rank, the BG/L runs).
    """

    def __init__(self, method: Literal["pnetcdf", "split"] = "pnetcdf"):
        if method not in ("pnetcdf", "split"):
            raise ConfigurationError(f"unknown I/O method {method!r}")
        self.method = method

    def _write(self, writers: int, nbytes: float, machine: Machine) -> float:
        if self.method == "pnetcdf":
            return pnetcdf_write_time(writers, nbytes, machine)
        return split_write_time(writers, nbytes, machine)

    # ------------------------------------------------------------------
    def event_cost(
        self,
        file_bytes: Sequence[float],
        file_writers: Sequence[int],
        *,
        concurrent: bool,
        machine: Machine,
    ) -> IoCost:
        """Cost of writing one history file per domain.

        Under the sequential strategy every file is written by the full
        rank set one after another (times add). Under the parallel
        strategy each sibling's file is written by its own sub-communicator
        concurrently (times max), except the parent file which always
        involves everyone and is serialised before the sibling writes.
        """
        if len(file_bytes) != len(file_writers):
            raise ConfigurationError(
                f"{len(file_bytes)} byte counts vs {len(file_writers)} writer counts"
            )
        per_file = tuple(
            self._write(w, b, machine) for b, w in zip(file_bytes, file_writers)
        )
        if concurrent:
            parent = per_file[0] if per_file else 0.0
            siblings = per_file[1:]
            total = parent + (max(siblings) if siblings else 0.0)
        else:
            total = sum(per_file)
        _IO_EVENTS.inc()
        _IO_BYTES.inc(int(sum(file_bytes)))
        _IO_EVENT_TIME.observe(total)
        return IoCost(time=total, per_file=per_file)
