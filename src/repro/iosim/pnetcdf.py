"""Collective (PnetCDF-style) write cost model.

.. math::

    t_{write}(W, B) = c_{meta} \\cdot W \\;+\\;
        \\frac{B}{\\min(BW_{max},\\; bw_{writer} \\cdot W)}

The first term models per-writer metadata exchange, offset negotiation
and the two-phase-I/O synchronisation — it grows with the writer count
and is what made the paper's per-iteration I/O time *increase* with
processors. The second term is data movement against an aggregate
file-system bandwidth that saturates once enough writers participate.
"""

from __future__ import annotations

from repro.topology.machines import Machine
from repro.util.validation import check_positive_float, check_positive_int

__all__ = ["pnetcdf_write_time"]


def pnetcdf_write_time(num_writers: int, nbytes: float, machine: Machine) -> float:
    """Seconds to collectively write *nbytes* with *num_writers* ranks."""
    check_positive_int(num_writers, "num_writers")
    check_positive_float(nbytes, "nbytes", allow_zero=True)
    meta = machine.io_meta_cost_per_writer * num_writers
    if nbytes == 0.0:
        return meta
    bandwidth = min(
        machine.io_bandwidth_max,
        machine.io_per_writer_bandwidth * num_writers,
    )
    return meta + nbytes / bandwidth
