"""Capacity planning: which scale, strategy, and mapping to use.

A downstream user's first question is operational: *given this nest
configuration and a machine, how many cores should I ask for, and with
which strategy/mapping?* This module sweeps the candidate space with the
cost simulator and returns ranked recommendations, including the
efficiency cliff — the scale beyond which extra cores are mostly wasted.

The sweep is embarrassingly parallel over rank counts: pass ``jobs=N``
to fan the per-scale evaluation out over a process pool
(:class:`~repro.exec.pool.SweepRunner`). Results are byte-identical for
every worker count — each rank count is priced by a pure function of
the picklable task spec.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.analysis.tables import Table
from repro.core.mapping.base import Mapping
from repro.core.mapping.multilevel import MultiLevelMapping
from repro.errors import ConfigurationError
from repro.exec.plancache import parallel_plan, sequential_plan
from repro.exec.pool import SweepRunner
from repro.iosim.model import IoModel
from repro.perfsim.params import WorkloadParams
from repro.perfsim.simulate import simulate_iteration
from repro.runtime.decomposition import choose_process_grid
from repro.runtime.process_grid import ProcessGrid
from repro.topology.machines import Machine
from repro.workloads.regions import Configuration

__all__ = ["PlanOption", "PlanRecommendation", "recommend"]


@dataclass(frozen=True)
class PlanOption:
    """One evaluated (ranks, strategy, mapping) combination."""

    ranks: int
    strategy: str
    mapping: str
    time_per_iteration: float
    #: Core-seconds spent per iteration (cost of the option).
    core_seconds: float
    #: Parallel efficiency relative to the cheapest evaluated run.
    efficiency: float


@dataclass(frozen=True)
class PlanRecommendation:
    """The ranked sweep results."""

    config_name: str
    machine: str
    options: Tuple[PlanOption, ...]
    #: Fastest option overall.
    fastest: PlanOption
    #: Fastest option whose efficiency is still >= the efficiency floor.
    recommended: PlanOption
    efficiency_floor: float

    def render(self) -> str:
        """Human-readable sweep table plus the recommendation."""
        t = Table(
            ["ranks", "strategy", "mapping", "s/iteration", "core-s/iter",
             "efficiency"],
            title=f"Capacity plan for {self.config_name} on {self.machine}",
        )
        for o in self.options:
            t.add_row([o.ranks, o.strategy, o.mapping, o.time_per_iteration,
                       o.core_seconds, o.efficiency])
        return (
            f"{t.render()}\n"
            f"fastest     : {self.fastest.ranks} ranks, "
            f"{self.fastest.strategy}/{self.fastest.mapping} "
            f"({self.fastest.time_per_iteration:.3f} s/iter)\n"
            f"recommended : {self.recommended.ranks} ranks, "
            f"{self.recommended.strategy}/{self.recommended.mapping} "
            f"({self.recommended.time_per_iteration:.3f} s/iter at "
            f"{self.recommended.efficiency:.0%} efficiency)"
        )


def _rank_candidates(max_ranks: int, min_ranks: int) -> List[int]:
    out = []
    r = min_ranks
    while r <= max_ranks:
        out.append(r)
        r *= 2
    if not out:
        raise ConfigurationError(
            f"no power-of-two rank counts in [{min_ranks}, {max_ranks}]"
        )
    return out


def _evaluate_scale(item) -> List[PlanOption]:
    """Price one rank count under all three strategy/mapping combos.

    Module-level and driven by a picklable tuple so the planner sweep
    can dispatch it to pool workers. Efficiency is filled by the caller
    once the cheapest option across the whole sweep is known.
    """
    (config, machine, mapping, workload, io_model, ratios, ranks) = item
    px, py = choose_process_grid(ranks)
    grid = ProcessGrid(px, py)
    siblings = list(config.siblings)
    seq_plan = sequential_plan(grid, config.parent, siblings)
    par_plan = parallel_plan(grid, config.parent, siblings, ratios)
    candidates = [
        ("sequential", "oblivious", simulate_iteration(
            seq_plan, machine, workload=workload, io_model=io_model)),
        ("parallel", "oblivious", simulate_iteration(
            par_plan, machine, workload=workload, io_model=io_model)),
        ("parallel", mapping.name, simulate_iteration(
            par_plan, machine, mapping=mapping, workload=workload,
            io_model=io_model)),
    ]
    return [
        PlanOption(
            ranks=ranks,
            strategy=strategy,
            mapping=map_name,
            time_per_iteration=rep.total_time,
            core_seconds=rep.total_time * ranks,
            efficiency=0.0,  # filled by recommend() once the sweep is in
        )
        for strategy, map_name, rep in candidates
    ]


def recommend(
    config: Configuration,
    machine: Machine,
    *,
    max_ranks: int = 4096,
    min_ranks: int = 64,
    efficiency_floor: float = 0.5,
    mapping: Optional[Mapping] = None,
    workload: Optional[WorkloadParams] = None,
    io_model: Optional[IoModel] = None,
    jobs: int = 1,
) -> PlanRecommendation:
    """Sweep scales and strategies; recommend the efficient sweet spot.

    Efficiency of an option is ``(best core-seconds) / (its
    core-seconds)`` — 1.0 for the most work-efficient run. The
    *recommended* option is the fastest one whose efficiency stays at or
    above *efficiency_floor* (default: don't waste more than half the
    machine); the *fastest* option ignores efficiency. *jobs* fans the
    per-scale evaluations out over a process pool; the recommendation is
    identical for every worker count.
    """
    if not (0.0 < efficiency_floor <= 1.0):
        raise ConfigurationError("efficiency_floor must be in (0, 1]")
    mapping = mapping or MultiLevelMapping()
    siblings = list(config.siblings)
    ratios = tuple(
        float(s.points * s.steps_per_parent_step) for s in siblings
    )

    items = [
        (config, machine, mapping, workload, io_model, ratios, ranks)
        for ranks in _rank_candidates(max_ranks, min_ranks)
    ]
    sweep = SweepRunner(jobs).map(_evaluate_scale, items)
    options: List[PlanOption] = [o for group in sweep.results for o in group]

    best_core_seconds = min(o.core_seconds for o in options)
    options = [
        replace(o, efficiency=best_core_seconds / o.core_seconds)
        for o in options
    ]
    options.sort(key=lambda o: o.time_per_iteration)

    fastest = options[0]
    efficient = [o for o in options if o.efficiency >= efficiency_floor]
    recommended = efficient[0] if efficient else fastest
    return PlanRecommendation(
        config_name=config.name,
        machine=machine.name,
        options=tuple(options),
        fastest=fastest,
        recommended=recommended,
        efficiency_floor=efficiency_floor,
    )
