"""Tiny ASCII line plots for figure-style experiment output."""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["ascii_series"]


def ascii_series(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more y-series over shared x values as an ASCII chart.

    Each series gets a marker character; points are plotted on a
    ``width x height`` canvas with linear axes. Good enough to eyeball
    the *shape* of a figure in a terminal or a test log.
    """
    if not x or not series:
        raise ValueError("need at least one x value and one series")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} has {len(ys)} values for {len(x)} xs")

    markers = "*o+x#@%&"
    xs = [float(v) for v in x]
    all_y = [float(v) for ys in series.values() for v in ys]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        mark = markers[si % len(markers)]
        for xv, yv in zip(xs, ys):
            col = round((float(xv) - x_lo) / x_span * (width - 1))
            row = round((float(yv) - y_lo) / y_span * (height - 1))
            canvas[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    lines.append(f"{y_hi:.4g} ({y_label})")
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{y_lo:.4g}  {x_label}: {x_lo:.4g} .. {x_hi:.4g}")
    return "\n".join(lines)
