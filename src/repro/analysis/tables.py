"""Minimal ASCII table rendering for experiment output."""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["Table"]


class Table:
    """A fixed-column ASCII table.

    >>> t = Table(["P", "time (s)"], title="Scaling")
    >>> t.add_row([512, 0.654])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], *, title: str | None = None):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, values: Sequence[Any]) -> None:
        """Append a row; values are formatted (floats to 4 significant digits)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append([self._fmt(v) for v in values])

    @staticmethod
    def _fmt(v: Any) -> str:
        if isinstance(v, bool):
            return str(v)
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    def render(self) -> str:
        """Render to a string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
