"""The headline improvement experiments: Fig 8-10, Tables 1-3, Sec 4.3."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments.common import (
    StrategyComparison,
    compare_strategies_sweep,
    fitted_model,
    grid_for,
)
from repro.analysis.tables import Table
from repro.core.scheduler.plan import ExecutionPlan, SiblingAssignment
from repro.core.scheduler.strategies import SequentialStrategy
from repro.iosim.model import IoModel
from repro.perfsim.simulate import simulate_iteration
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P, Machine
from repro.util.stats import mean
from repro.workloads.paper_configs import (
    fig10_domains,
    table2_domains,
    table2_rects,
    table3_configurations,
)
from repro.workloads.regions import Configuration, pacific_configurations

__all__ = [
    "fig8_improvement_with_io",
    "Fig8Result",
    "table1_wait_improvement",
    "Table1Result",
    "table2_fig9_siblings",
    "Table2Fig9Result",
    "fig10_large_siblings",
    "Fig10Result",
    "sibling_count_effect",
    "SiblingCountResult",
    "table3_nest_size_effect",
    "Table3Result",
]


# ----------------------------------------------------------------- Fig 8
@dataclass(frozen=True)
class Fig8Result:
    """% improvement incl./excl. I/O, averaged over configurations (Fig 8)."""

    ranks: Tuple[int, ...]
    improvement_excl_io: Tuple[float, ...]
    improvement_incl_io: Tuple[float, ...]
    num_configs: int

    def render(self) -> str:
        """Fig 8-style rows."""
        t = Table(["BG/P cores", "improvement % (excl I/O)", "improvement % (incl I/O)"],
                  title=f"Fig 8 — mean improvement over {self.num_configs} "
                        "Pacific configurations")
        for row in zip(self.ranks, self.improvement_excl_io, self.improvement_incl_io):
            t.add_row(list(row))
        return t.render()


def fig8_improvement_with_io(
    machine: Machine = BLUE_GENE_P,
    ranks: Sequence[int] = (512, 1024, 2048, 4096),
    *,
    num_configs: int = 30,
    seed: int = 2010,
    jobs: int = 1,
) -> Fig8Result:
    """Reproduce Fig 8: improvements with and without PnetCDF I/O."""
    configs = pacific_configurations(num_configs, seed=seed)
    io = IoModel("pnetcdf")
    pairs = [(c, r) for r in ranks for c in configs]
    comps = compare_strategies_sweep(pairs, machine, io_model=io, jobs=jobs)
    excl: List[float] = []
    incl: List[float] = []
    for i, _ in enumerate(ranks):
        group = comps[i * len(configs):(i + 1) * len(configs)]
        excl.append(mean(c.improvement for c in group))
        incl.append(mean(c.improvement_with_io for c in group))
    return Fig8Result(
        ranks=tuple(ranks),
        improvement_excl_io=tuple(excl),
        improvement_incl_io=tuple(incl),
        num_configs=num_configs,
    )


# --------------------------------------------------------------- Table 1
@dataclass(frozen=True)
class Table1Result:
    """Average/maximum MPI_Wait improvements (Table 1)."""

    rows: Tuple[Tuple[str, int, float, float], ...]  # (machine, ranks, avg, max)
    num_configs: int

    def render(self) -> str:
        """Table 1-style rows."""
        t = Table(["#processors", "average %", "maximum %"],
                  title=f"Table 1 — MPI_Wait improvement over {self.num_configs} "
                        "configurations")
        for machine, ranks, avg, mx in self.rows:
            t.add_row([f"{ranks} on {machine}", avg, mx])
        return t.render()


def table1_wait_improvement(
    *,
    num_configs: int = 20,
    seed: int = 2010,
    bgl_ranks: Sequence[int] = (1024,),
    bgp_ranks: Sequence[int] = (512, 1024, 2048, 4096),
    jobs: int = 1,
) -> Table1Result:
    """Reproduce Table 1: MPI_Wait improvements on BG/L and BG/P."""
    configs = pacific_configurations(num_configs, seed=seed)
    rows: List[Tuple[str, int, float, float]] = []
    for machine, rank_list in ((BLUE_GENE_L, bgl_ranks), (BLUE_GENE_P, bgp_ranks)):
        pairs = [(c, r) for r in rank_list for c in configs]
        comps = compare_strategies_sweep(pairs, machine, jobs=jobs)
        for i, r in enumerate(rank_list):
            group = comps[i * len(configs):(i + 1) * len(configs)]
            imps = [c.wait_improvement for c in group]
            rows.append((machine.name, r, mean(imps), max(imps)))
    return Table1Result(rows=tuple(rows), num_configs=num_configs)


# ------------------------------------------------------- Table 2 / Fig 9
@dataclass(frozen=True)
class Table2Fig9Result:
    """Per-sibling times under both strategies (Table 2 + Fig 9)."""

    sibling_names: Tuple[str, ...]
    sibling_sizes: Tuple[str, ...]
    allocated: Tuple[str, ...]
    sequential_times: Tuple[float, ...]
    parallel_times: Tuple[float, ...]

    @property
    def sequential_total(self) -> float:
        """Sequential sibling phase: times add (paper: 1.1 s)."""
        return sum(self.sequential_times)

    @property
    def parallel_total(self) -> float:
        """Parallel sibling phase: the max (paper: 0.7 s)."""
        return max(self.parallel_times)

    @property
    def improvement(self) -> float:
        """Sibling-phase gain (paper: 36%)."""
        return 100.0 * (self.sequential_total - self.parallel_total) / self.sequential_total

    def render(self) -> str:
        """Table 2 + Fig 9-style output."""
        t = Table(["sibling", "nest size", "#processors", "seq (s)", "parallel (s)"],
                  title="Table 2 / Fig 9 — four siblings on 1024 BG/L cores")
        for row in zip(self.sibling_names, self.sibling_sizes, self.allocated,
                       self.sequential_times, self.parallel_times):
            t.add_row(list(row))
        return (
            f"{t.render()}\n"
            f"sequential phase {self.sequential_total:.3f} s (paper 1.1), "
            f"parallel phase {self.parallel_total:.3f} s (paper 0.7), "
            f"gain {self.improvement:.1f}% (paper 36%)"
        )


def table2_fig9_siblings(machine: Machine = BLUE_GENE_L) -> Table2Fig9Result:
    """Reproduce Table 2 / Fig 9 with the paper's printed allocation."""
    config = table2_domains()
    grid = grid_for(1024)
    siblings = list(config.siblings)

    seq_plan = SequentialStrategy().plan(grid, config.parent, siblings)
    seq = simulate_iteration(seq_plan, machine)

    rects = table2_rects()
    par_plan = ExecutionPlan(
        grid=grid,
        parent=config.parent,
        assignments=tuple(SiblingAssignment(s, r) for s, r in zip(siblings, rects)),
        concurrent=True,
        strategy="parallel",
    )
    par = simulate_iteration(par_plan, machine)

    return Table2Fig9Result(
        sibling_names=tuple(s.name for s in siblings),
        sibling_sizes=tuple(f"{s.nx}x{s.ny}" for s in siblings),
        allocated=tuple(f"{r.width}x{r.height}" for r in rects),
        sequential_times=tuple(s.step.total for s in seq.siblings),
        parallel_times=tuple(s.step.total for s in par.siblings),
    )


# ---------------------------------------------------------------- Fig 10
@dataclass(frozen=True)
class Fig10Result:
    """Improvement for three large siblings vs processor count (Fig 10)."""

    ranks: Tuple[int, ...]
    sequential_phase: Tuple[float, ...]
    parallel_phase: Tuple[float, ...]
    improvements: Tuple[float, ...]

    def render(self) -> str:
        """Fig 10-style rows."""
        t = Table(["BG/P cores", "sequential nest phase (s)",
                   "parallel nest phase (s)", "improvement %"],
                  title="Fig 10 — three large siblings (586x643, 856x919, 925x850)")
        for row in zip(self.ranks, self.sequential_phase, self.parallel_phase,
                       self.improvements):
            t.add_row(list(row))
        return t.render()


def fig10_large_siblings(
    machine: Machine = BLUE_GENE_P,
    ranks: Sequence[int] = (1024, 2048, 4096, 8192),
    *,
    jobs: int = 1,
) -> Fig10Result:
    """Reproduce Fig 10: gains grow with scale for large nests."""
    config = fig10_domains()
    comps = compare_strategies_sweep(
        [(config, r) for r in ranks], machine, jobs=jobs
    )
    seqs: List[float] = []
    pars: List[float] = []
    imps: List[float] = []
    for cmp in comps:
        seqs.append(cmp.sequential.integration_time)
        pars.append(cmp.parallel.integration_time)
        imps.append(cmp.improvement)
    return Fig10Result(
        ranks=tuple(ranks),
        sequential_phase=tuple(seqs),
        parallel_phase=tuple(pars),
        improvements=tuple(imps),
    )


# --------------------------------------------------- Sec 4.3.4 (siblings)
@dataclass(frozen=True)
class SiblingCountResult:
    """Mean improvement for 2-sibling vs 4-sibling configurations."""

    improvement_by_count: Dict[int, float]
    num_configs: int

    def render(self) -> str:
        """Sec 4.3.4-style summary."""
        t = Table(["#siblings", "mean improvement %"],
                  title="Sec 4.3.4 — effect of sibling count (paper: 19.43% vs 24.22%)")
        for k in sorted(self.improvement_by_count):
            t.add_row([k, self.improvement_by_count[k]])
        return t.render()


def sibling_count_effect(
    machine: Machine = BLUE_GENE_L,
    num_ranks: int = 1024,
    *,
    configs_per_count: int = 12,
    seed: int = 424,
    jobs: int = 1,
) -> SiblingCountResult:
    """Reproduce Sec 4.3.4: more siblings -> larger improvement."""
    from repro.workloads.generator import random_siblings
    from repro.workloads.regions import pacific_parent
    from repro.util.rng import make_rng

    rng = make_rng(seed)
    parent = pacific_parent()
    # Draw every configuration first (one shared RNG stream, unchanged
    # order), then sweep them all in one pool dispatch.
    counts = (2, 4)
    configs: List[Configuration] = []
    for k in counts:
        for _ in range(configs_per_count):
            siblings = random_siblings(parent, k, seed=rng)
            configs.append(Configuration(f"sc{k}", parent, tuple(siblings)))
    comps = compare_strategies_sweep(
        [(c, num_ranks) for c in configs], machine, jobs=jobs
    )
    result: Dict[int, float] = {}
    for i, k in enumerate(counts):
        group = comps[i * configs_per_count:(i + 1) * configs_per_count]
        result[k] = mean(c.improvement for c in group)
    return SiblingCountResult(
        improvement_by_count=result, num_configs=configs_per_count
    )


# --------------------------------------------------------------- Table 3
@dataclass(frozen=True)
class Table3Result:
    """Improvement vs maximum nest size (Table 3)."""

    max_nest_sizes: Tuple[str, ...]
    improvements: Tuple[float, ...]
    ranks: int

    def render(self) -> str:
        """Table 3-style rows."""
        t = Table(["maximum nest size", "improvement %"],
                  title=f"Table 3 — nest-size effect on up to {self.ranks} BG/P cores "
                        "(paper: 25.62 / 21.87 / 10.11)")
        for row in zip(self.max_nest_sizes, self.improvements):
            t.add_row(list(row))
        return t.render()


def table3_nest_size_effect(
    machine: Machine = BLUE_GENE_P,
    ranks: Sequence[int] = (1024, 2048, 4096, 8192),
    *,
    jobs: int = 1,
) -> Table3Result:
    """Reproduce Table 3: larger nests benefit less.

    The paper reports one improvement per configuration "on up to 8192
    BG/P cores"; we average the improvement over the processor counts up
    to 8192, matching that phrasing.
    """
    configs = list(table3_configurations())
    comps = compare_strategies_sweep(
        [(c, r) for c in configs for r in ranks], machine, jobs=jobs
    )
    sizes: List[str] = []
    imps: List[float] = []
    for i, config in enumerate(configs):
        biggest = max(config.siblings, key=lambda s: s.points)
        sizes.append(f"{biggest.nx}x{biggest.ny}")
        group = comps[i * len(ranks):(i + 1) * len(ranks)]
        imps.append(mean(c.improvement for c in group))
    return Table3Result(
        max_nest_sizes=tuple(sizes), improvements=tuple(imps), ranks=max(ranks)
    )
