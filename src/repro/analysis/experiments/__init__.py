"""One driver per paper table/figure.

Every driver returns a small result dataclass carrying both the raw
numbers and a ``render()`` method that prints the same rows/series the
paper reports. The benchmarks under ``benchmarks/`` call these drivers.
"""

from repro.analysis.experiments.common import (
    fitted_model,
    compare_strategies,
    compare_strategies_sweep,
    warm_worker,
    StrategyComparison,
)
from repro.analysis.experiments.exp_scaling import fig2_scaling, fig15_speedup
from repro.analysis.experiments.exp_prediction import (
    fig3a_triangulation,
    prediction_error_study,
)
from repro.analysis.experiments.exp_allocation import (
    fig3b_partition,
    fig4_split_direction,
    sec46_allocation_quality,
)
from repro.analysis.experiments.exp_improvement import (
    fig8_improvement_with_io,
    table1_wait_improvement,
    table2_fig9_siblings,
    fig10_large_siblings,
    sibling_count_effect,
    table3_nest_size_effect,
)
from repro.analysis.experiments.exp_mapping import (
    fig5_fig6_mapping_example,
    table4_fig11_mappings_bgl,
    table5_fig12_mappings_bgp,
)
from repro.analysis.experiments.exp_io import fig13_fig14_io_scaling

__all__ = [
    "fitted_model",
    "compare_strategies",
    "compare_strategies_sweep",
    "warm_worker",
    "StrategyComparison",
    "fig2_scaling",
    "fig15_speedup",
    "fig3a_triangulation",
    "prediction_error_study",
    "fig3b_partition",
    "fig4_split_direction",
    "sec46_allocation_quality",
    "fig8_improvement_with_io",
    "table1_wait_improvement",
    "table2_fig9_siblings",
    "fig10_large_siblings",
    "sibling_count_effect",
    "table3_nest_size_effect",
    "fig5_fig6_mapping_example",
    "table4_fig11_mappings_bgl",
    "table5_fig12_mappings_bgp",
    "fig13_fig14_io_scaling",
]
