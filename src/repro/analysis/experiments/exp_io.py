"""High-frequency output experiments: Figs 13 and 14."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence, Tuple

from repro.analysis.ascii_plot import ascii_series
from repro.analysis.experiments.common import compare_strategies_sweep
from repro.analysis.tables import Table
from repro.iosim.model import IoModel
from repro.perfsim.params import OutputParams, WorkloadParams
from repro.topology.machines import BLUE_GENE_P, Machine
from repro.util.stats import mean
from repro.workloads.regions import pacific_configurations

__all__ = ["fig13_fig14_io_scaling", "IoScalingResult"]


@dataclass(frozen=True)
class IoScalingResult:
    """Per-iteration integration/I/O/total times vs processors (Fig 13)
    and the integration-vs-I/O fraction (Fig 14)."""

    ranks: Tuple[int, ...]
    #: strategy name -> per-rank-count mean time per iteration.
    integration: Dict[str, Tuple[float, ...]]
    io: Dict[str, Tuple[float, ...]]
    total: Dict[str, Tuple[float, ...]]

    def io_fraction(self, strategy: str) -> Tuple[float, ...]:
        """Fig 14's I/O fraction of total time per rank count."""
        return tuple(
            i / t if t > 0 else 0.0
            for i, t in zip(self.io[strategy], self.total[strategy])
        )

    def render(self) -> str:
        """Fig 13(a-c) tables plus the Fig 14 fractions."""
        parts: List[str] = []
        for metric, data in (("integration", self.integration),
                             ("I/O", self.io), ("total", self.total)):
            t = Table(["BG/P cores", "sequential (s)", "parallel siblings (s)"],
                      title=f"Fig 13 — {metric} time per iteration")
            for i, r in enumerate(self.ranks):
                t.add_row([r, data["sequential"][i], data["parallel"][i]])
            parts.append(t.render())
        f = Table(["BG/P cores", "seq I/O fraction", "parallel I/O fraction"],
                  title="Fig 14 — I/O fraction of total time")
        seq_frac = self.io_fraction("sequential")
        par_frac = self.io_fraction("parallel")
        for i, r in enumerate(self.ranks):
            f.add_row([r, seq_frac[i], par_frac[i]])
        parts.append(f.render())
        parts.append(ascii_series(
            list(self.ranks),
            {"seq io": list(self.io["sequential"]),
             "par io": list(self.io["parallel"])},
            title="per-iteration I/O time vs processors",
            x_label="processors", y_label="s",
        ))
        return "\n\n".join(parts)


def fig13_fig14_io_scaling(
    machine: Machine = BLUE_GENE_P,
    ranks: Sequence[int] = (512, 1024, 2048, 4096, 8192),
    *,
    num_configs: int = 8,
    seed: int = 2010,
    jobs: int = 1,
) -> IoScalingResult:
    """Reproduce Figs 13/14: high-frequency (10-minute) output runs.

    Ten-minute output at the paper's nest time steps means a history
    write every ~4 outer iterations; PnetCDF collective writes are used
    as on BG/P.
    """
    workload = WorkloadParams(
        output=OutputParams(interval_steps=4, enabled=True, include_parent=False)
    )
    io = IoModel("pnetcdf")
    configs = pacific_configurations(num_configs, seed=seed)

    pairs = [(c, r) for r in ranks for c in configs]
    all_comps = compare_strategies_sweep(
        pairs, machine, workload=workload, io_model=io, jobs=jobs
    )

    integration: Dict[str, List[float]] = {"sequential": [], "parallel": []}
    io_times: Dict[str, List[float]] = {"sequential": [], "parallel": []}
    totals: Dict[str, List[float]] = {"sequential": [], "parallel": []}
    for i, _ in enumerate(ranks):
        comps = all_comps[i * len(configs):(i + 1) * len(configs)]
        for key, pick in (("sequential", lambda c: c.sequential),
                          ("parallel", lambda c: c.parallel)):
            integration[key].append(mean(pick(c).integration_time for c in comps))
            io_times[key].append(mean(pick(c).io_time for c in comps))
            totals[key].append(mean(pick(c).total_time for c in comps))

    return IoScalingResult(
        ranks=tuple(ranks),
        integration={k: tuple(v) for k, v in integration.items()},
        io={k: tuple(v) for k, v in io_times.items()},
        total={k: tuple(v) for k, v in totals.items()},
    )
