"""Mapping experiments: Fig 5/6, Tables 4 and 5, Figs 11 and 12."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments.common import fitted_model, grid_for
from repro.analysis.tables import Table
from repro.core.mapping.base import Mapping, SlotSpace
from repro.core.mapping.metrics import nest_and_parent_metrics
from repro.core.mapping.multilevel import MultiLevelMapping
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.mapping.partition_map import PartitionMapping
from repro.core.mapping.txyz import TxyzMapping
from repro.core.scheduler.strategies import ParallelSiblingsStrategy, SequentialStrategy
from repro.exec.placementcache import cached_placement
from repro.perfsim.simulate import simulate_iteration
from repro.runtime.halo import HaloSpec
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P, Machine
from repro.topology.torus import Torus3D
from repro.util.stats import mean, percent_improvement
from repro.workloads.paper_configs import table4_configurations, table5_configurations
from repro.workloads.regions import Configuration

__all__ = [
    "fig5_fig6_mapping_example",
    "MappingExampleResult",
    "mapping_comparison",
    "MappingComparisonResult",
    "table4_fig11_mappings_bgl",
    "table5_fig12_mappings_bgp",
]


# ------------------------------------------------------------- Fig 5 / 6
@dataclass(frozen=True)
class MappingExampleResult:
    """Hop counts of the paper's 32-process example (Figs 5 and 6)."""

    #: mapping name -> {"parent": hops, "nest0": hops, "nest1": hops}
    average_hops: Dict[str, Dict[str, float]]
    #: Key single-pair distances the paper calls out.
    oblivious_0_to_8: int
    oblivious_8_to_16: int
    multilevel_3_to_4: int

    def render(self) -> str:
        """Figs 5/6-style hop summary."""
        t = Table(["mapping", "parent avg hops", "nest avg hops"],
                  title="Figs 5/6 — 32 processes, two equal siblings, 4x4x2 torus")
        for name, hops in self.average_hops.items():
            nest = mean([hops["nest0"], hops["nest1"]])
            t.add_row([name, hops["parent"], nest])
        return (
            f"{t.render()}\n"
            f"oblivious: rank 0->8 is {self.oblivious_0_to_8} hops (paper: 2), "
            f"8->16 is {self.oblivious_8_to_16} hops (paper: 3); "
            f"multi-level: parent seam 3->4 is {self.multilevel_3_to_4} hop (paper: 1)"
        )


def fig5_fig6_mapping_example() -> MappingExampleResult:
    """Reproduce the Figs 5/6 worked example exactly."""
    grid = ProcessGrid(8, 4)
    space = SlotSpace(Torus3D((4, 4, 2)), 1)
    rects = [GridRect(0, 0, 4, 4), GridRect(4, 0, 4, 4)]
    spec = HaloSpec(width=1, levels=1, rounds_per_step=1)
    hops: Dict[str, Dict[str, float]] = {}
    placements = {}
    for mapping in (ObliviousMapping(), TxyzMapping(), PartitionMapping(), MultiLevelMapping()):
        p = cached_placement(mapping, grid, space, rects)
        placements[mapping.name] = p
        metrics = nest_and_parent_metrics(p, (80, 40), [(40, 40), (40, 40)], rects, spec)
        hops[mapping.name] = {k: m.average_hops for k, m in metrics.items()}
    return MappingExampleResult(
        average_hops=hops,
        oblivious_0_to_8=placements["oblivious"].hops_between(0, 8),
        oblivious_8_to_16=placements["oblivious"].hops_between(8, 16),
        multilevel_3_to_4=placements["multilevel"].hops_between(3, 4),
    )


# -------------------------------------------------------- Tables 4 and 5
@dataclass(frozen=True)
class MappingComparisonResult:
    """Per-configuration iteration times under every mapping (Table 4/5)."""

    machine: str
    ranks: int
    config_names: Tuple[str, ...]
    #: column name -> per-configuration iteration times.
    times: Dict[str, Tuple[float, ...]]
    #: column name -> per-configuration average per-rank MPI_Wait.
    waits: Dict[str, Tuple[float, ...]]
    #: column name -> per-configuration message-weighted average hops.
    hops: Dict[str, Tuple[float, ...]]

    def improvement_over_default(self, column: str) -> Tuple[float, ...]:
        """% execution-time improvement of *column* vs the default strategy."""
        return tuple(
            percent_improvement(d, v)
            for d, v in zip(self.times["default"], self.times[column])
        )

    def wait_improvement_over_default(self, column: str) -> Tuple[float, ...]:
        """% MPI_Wait improvement of *column* vs the default strategy."""
        return tuple(
            percent_improvement(d, v) if d > 0 else 0.0
            for d, v in zip(self.waits["default"], self.waits[column])
        )

    def hop_reduction_over_default(self, column: str) -> Tuple[float, ...]:
        """% reduction in average hops of *column* vs the default."""
        return tuple(
            percent_improvement(d, v) if d > 0 else 0.0
            for d, v in zip(self.hops["default"], self.hops[column])
        )

    def render(self) -> str:
        """Table 4/5-style rows plus Fig 11/12-style improvements."""
        columns = list(self.times)
        t = Table(["config"] + columns,
                  title=f"Execution times (s/iteration) on {self.ranks} {self.machine} cores")
        for i, name in enumerate(self.config_names):
            t.add_row([name] + [self.times[c][i] for c in columns])
        w = Table(["config"] + columns[1:],
                  title="MPI_Wait improvement % over default")
        for i, name in enumerate(self.config_names):
            w.add_row([name] + [self.wait_improvement_over_default(c)[i]
                                for c in columns[1:]])
        h = Table(["config"] + columns[1:],
                  title="Average-hop reduction % over default")
        for i, name in enumerate(self.config_names):
            h.add_row([name] + [self.hop_reduction_over_default(c)[i]
                                for c in columns[1:]])
        return "\n\n".join([t.render(), w.render(), h.render()])


def mapping_comparison(
    configs: Sequence[Configuration],
    num_ranks: int,
    machine: Machine,
) -> MappingComparisonResult:
    """Compare default vs oblivious/partition/multilevel/TXYZ mappings."""
    grid = grid_for(num_ranks)
    model = fitted_model(machine)
    columns: Dict[str, List[float]] = {
        "default": [], "oblivious": [], "partition": [], "multilevel": [], "txyz": [],
    }
    waits: Dict[str, List[float]] = {k: [] for k in columns}
    hops: Dict[str, List[float]] = {k: [] for k in columns}
    names: List[str] = []

    mappings: Dict[str, Optional[Mapping]] = {
        "oblivious": None,  # defaults to ObliviousMapping inside simulate
        "partition": PartitionMapping(),
        "multilevel": MultiLevelMapping(),
        "txyz": TxyzMapping(),
    }

    for config in configs:
        names.append(config.name)
        siblings = list(config.siblings)
        seq_plan = SequentialStrategy().plan(grid, config.parent, siblings)
        rep = simulate_iteration(seq_plan, machine)
        columns["default"].append(rep.integration_time)
        waits["default"].append(rep.mpi_wait)
        hops["default"].append(rep.average_hops)

        par_plan = ParallelSiblingsStrategy(model).plan(grid, config.parent, siblings)
        for name, mapping in mappings.items():
            rep = simulate_iteration(par_plan, machine, mapping=mapping)
            columns[name].append(rep.integration_time)
            waits[name].append(rep.mpi_wait)
            hops[name].append(rep.average_hops)

    return MappingComparisonResult(
        machine=machine.name,
        ranks=num_ranks,
        config_names=tuple(names),
        times={k: tuple(v) for k, v in columns.items()},
        waits={k: tuple(v) for k, v in waits.items()},
        hops={k: tuple(v) for k, v in hops.items()},
    )


def table4_fig11_mappings_bgl(machine: Machine = BLUE_GENE_L) -> MappingComparisonResult:
    """Reproduce Table 4 / Fig 11: five configurations on 1024 BG/L cores."""
    return mapping_comparison(table4_configurations(), 1024, machine)


def table5_fig12_mappings_bgp(machine: Machine = BLUE_GENE_P) -> MappingComparisonResult:
    """Reproduce Table 5 / Fig 12: three configurations on 4096 BG/P cores."""
    return mapping_comparison(table5_configurations(), 4096, machine)
