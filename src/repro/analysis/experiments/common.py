"""Shared machinery for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mapping.base import Mapping, Placement, SlotSpace
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.prediction.basis import generate_candidates, select_basis
from repro.core.prediction.model import PerformanceModel
from repro.core.scheduler.plan import ExecutionPlan
from repro.exec.placementcache import cached_placement
from repro.exec.plancache import parallel_plan, sequential_plan
from repro.exec.pool import SweepRunner
from repro.iosim.model import IoModel
from repro.perfsim.params import WorkloadParams
from repro.perfsim.profiling import profile_step_time
from repro.perfsim.simulate import IterationReport, simulate_iteration
from repro.runtime.decomposition import choose_process_grid
from repro.runtime.process_grid import ProcessGrid
from repro.topology.machines import BLUE_GENE_L, BLUE_GENE_P, Machine
from repro.util.stats import percent_improvement
from repro.workloads.regions import Configuration

__all__ = [
    "fitted_model",
    "grid_for",
    "oblivious_placement",
    "compare_strategies",
    "compare_strategies_sweep",
    "warm_worker",
    "StrategyComparison",
]

#: Profiling runs use a fixed processor count, as in the paper (Sec 3.1).
PROFILE_RANKS = 512


def _machine_by_name(name: str) -> Machine:
    if name == BLUE_GENE_L.name:
        return BLUE_GENE_L
    if name == BLUE_GENE_P.name:
        return BLUE_GENE_P
    raise ValueError(f"unknown machine {name!r} for cached model")


@lru_cache(maxsize=8)
def _fitted_model_cached(machine_name: str, seed: int) -> PerformanceModel:
    machine = _machine_by_name(machine_name)
    candidates = generate_candidates(400, seed=seed)
    basis = select_basis(candidates)
    times = [profile_step_time(b, PROFILE_RANKS, machine) for b in basis]
    return PerformanceModel.from_measurements(basis, times)


def fitted_model(machine: Machine, *, seed: int = 7) -> PerformanceModel:
    """The Delaunay performance model fitted from 13 profiling runs.

    Cached per machine: fitting needs 13 cost-model evaluations, and every
    experiment shares the same model, as the paper's pipeline does.
    """
    return _fitted_model_cached(machine.name, seed)


def grid_for(num_ranks: int) -> ProcessGrid:
    """The near-square virtual process grid WRF would pick for *num_ranks*."""
    px, py = choose_process_grid(num_ranks)
    return ProcessGrid(px, py)


def oblivious_placement(
    machine: Machine, num_ranks: int, mode: Optional[str] = None
) -> Placement:
    """Shared default placement (it ignores partition rectangles).

    Memoized in the process-wide placement cache
    (:mod:`repro.exec.placementcache`), so sweeps that revisit a rank
    count share one placement with ``simulate_iteration``.
    """
    grid = grid_for(num_ranks)
    rpn = machine.mode(mode).ranks_per_node
    space = SlotSpace(machine.torus_for_ranks(num_ranks, mode), rpn)
    return cached_placement(ObliviousMapping(), grid, space)


@dataclass(frozen=True)
class StrategyComparison:
    """Default-vs-parallel comparison of one configuration at one scale."""

    config: Configuration
    ranks: int
    sequential: IterationReport
    parallel: IterationReport

    @property
    def improvement(self) -> float:
        """% improvement in integration time (the paper's headline metric)."""
        return percent_improvement(
            self.sequential.integration_time, self.parallel.integration_time
        )

    @property
    def improvement_with_io(self) -> float:
        """% improvement including history I/O."""
        return percent_improvement(
            self.sequential.total_time, self.parallel.total_time
        )

    @property
    def wait_improvement(self) -> float:
        """% improvement in average per-rank MPI_Wait."""
        if self.sequential.mpi_wait <= 0:
            return 0.0
        return percent_improvement(self.sequential.mpi_wait, self.parallel.mpi_wait)


def compare_strategies(
    config: Configuration,
    num_ranks: int,
    machine: Machine,
    *,
    mapping: Optional[Mapping] = None,
    workload: Optional[WorkloadParams] = None,
    io_model: Optional[IoModel] = None,
    mode: Optional[str] = None,
) -> StrategyComparison:
    """Run the default and the parallel strategy on one configuration.

    The parallel plan's ratios come from the fitted Delaunay model —
    the complete paper pipeline (predict -> allocate -> map -> run).
    Plans are memoized (:mod:`repro.exec.plancache`): rank sweeps and
    fuzz shrink loops revisit the same (grid, siblings) pairs heavily.
    """
    grid = grid_for(num_ranks)
    model = fitted_model(machine)
    siblings = list(config.siblings)

    seq_plan = sequential_plan(grid, config.parent, siblings)
    ratios = model.predict_ratios(siblings)
    par_plan = parallel_plan(grid, config.parent, siblings, ratios)

    seq_placement = None
    if mapping is None:
        # The sequential baseline always uses the machine default mapping;
        # share the cached placement across configurations.
        seq_placement = oblivious_placement(machine, num_ranks, mode)

    seq = simulate_iteration(
        seq_plan,
        machine,
        mapping=mapping,
        mode=mode,
        workload=workload,
        io_model=io_model,
        placement=seq_placement,
    )
    par = simulate_iteration(
        par_plan,
        machine,
        mapping=mapping,
        mode=mode,
        workload=workload,
        io_model=io_model,
        placement=seq_placement if mapping is None else None,
    )
    return StrategyComparison(
        config=config, ranks=num_ranks, sequential=seq, parallel=par
    )


def warm_worker(machine_name: str, seed: int = 7, columns: tuple = ()) -> None:
    """Pool-worker initializer: fit the shared model once per worker.

    Fitting costs 13 cost-model profiling runs; doing it in the
    initializer keeps it off every task's critical path. Safe (and a
    no-op beyond cache warming) in the parent process too.

    *columns* optionally carries :class:`~repro.exec.shm.SharedColumns`
    handles of message batches the sweep's tasks will route: the worker
    maps the shared pages once here, so every task's
    :func:`~repro.exec.shm.attach_halo_batch` is a cache hit.
    """
    if columns:
        from repro.exec.shm import attach_arrays

        for handle in columns:
            attach_arrays(handle)
    fitted_model(_machine_by_name(machine_name), seed=seed)


def _compare_task(item) -> StrategyComparison:
    """Picklable per-(config, ranks) sweep task for the pool."""
    (config, num_ranks, machine, mapping, workload, io_model, mode) = item
    return compare_strategies(
        config,
        num_ranks,
        machine,
        mapping=mapping,
        workload=workload,
        io_model=io_model,
        mode=mode,
    )


def compare_strategies_sweep(
    pairs: Sequence[Tuple[Configuration, int]],
    machine: Machine,
    *,
    mapping: Optional[Mapping] = None,
    workload: Optional[WorkloadParams] = None,
    io_model: Optional[IoModel] = None,
    mode: Optional[str] = None,
    jobs: int = 1,
) -> List[StrategyComparison]:
    """Run :func:`compare_strategies` over many (config, ranks) pairs.

    With ``jobs > 1`` the pairs fan out over a process pool whose
    workers pre-fit the performance model in their initializer. Results
    come back in input order and are byte-identical to ``jobs=1`` — the
    comparison is a pure function of the pair, and per-worker caches
    (model fit, placements, plans) only change *when* work happens, not
    its value.
    """
    items = [
        (config, ranks, machine, mapping, workload, io_model, mode)
        for config, ranks in pairs
    ]
    runner = SweepRunner(
        jobs, initializer=warm_worker, initargs=(machine.name,)
    )
    return list(runner.map(_compare_task, items).results)
