"""Allocation experiments: Fig 3(b), Fig 4, and Sec 4.6."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.experiments.common import fitted_model, grid_for
from repro.analysis.tables import Table
from repro.core.allocation.baselines import naive_strip_partition
from repro.core.allocation.huffman import HuffmanTree
from repro.core.allocation.partition import Allocation, partition_grid
from repro.core.allocation.splittree import partition_squareness, split_tree_partition
from repro.core.scheduler.strategies import ParallelSiblingsStrategy, SequentialStrategy
from repro.perfsim.simulate import simulate_iteration
from repro.runtime.process_grid import GridRect, ProcessGrid
from repro.topology.machines import BLUE_GENE_L, Machine
from repro.util.stats import percent_improvement
from repro.workloads.paper_configs import table2_domains

__all__ = [
    "fig3b_partition",
    "Fig3bResult",
    "fig4_split_direction",
    "Fig4Result",
    "sec46_allocation_quality",
    "Sec46Result",
]


@dataclass(frozen=True)
class Fig3bResult:
    """Partition of the processor space in a fixed time ratio (Fig 3(b))."""

    ratios: Tuple[float, ...]
    rects: Tuple[GridRect, ...]
    grid: ProcessGrid

    def render(self) -> str:
        """Fig 3(b)-style allocation listing."""
        t = Table(["nest", "time ratio", "processors", "share", "rectangle"],
                  title=f"Fig 3(b) — partitioning a {self.grid.px}x{self.grid.py} "
                        "processor grid in ratio 0.15:0.3:0.35:0.2")
        total = self.grid.size
        for i, (r, rect) in enumerate(zip(self.ratios, self.rects)):
            t.add_row([
                i + 1, r, rect.area, f"{rect.area / total:.3f}",
                f"{rect.width}x{rect.height}@({rect.x0},{rect.y0})",
            ])
        return t.render()


def fig3b_partition(grid: ProcessGrid | None = None) -> Fig3bResult:
    """Reproduce Fig 3(b): four nests in ratio 0.15 : 0.3 : 0.35 : 0.2."""
    grid = grid or ProcessGrid(32, 32)
    ratios = (0.15, 0.30, 0.35, 0.20)
    alloc = partition_grid(grid, list(ratios))
    return Fig3bResult(ratios=ratios, rects=alloc.rects, grid=grid)


@dataclass(frozen=True)
class Fig4Result:
    """Square-likeness of longer- vs shorter-dimension first splits (Fig 4)."""

    longer_first_squareness: float
    shorter_first_squareness: float
    longer_rects: Tuple[GridRect, ...]
    shorter_rects: Tuple[GridRect, ...]

    def render(self) -> str:
        """Fig 4-style comparison."""
        t = Table(["split direction", "mean squareness", "rectangles"],
                  title="Fig 4 — first partition along longer vs shorter dimension (k=3)")
        t.add_row([
            "longer (Algorithm 1)", self.longer_first_squareness,
            " ".join(f"{r.width}x{r.height}" for r in self.longer_rects),
        ])
        t.add_row([
            "shorter", self.shorter_first_squareness,
            " ".join(f"{r.width}x{r.height}" for r in self.shorter_rects),
        ])
        return t.render()


def _shorter_first_partition(ratios: List[float], grid: ProcessGrid) -> List[GridRect]:
    """Ablation: Algorithm 1 with the split direction inverted."""
    tree = HuffmanTree(ratios)
    rects: dict[int, GridRect] = {}
    node_rect = {id(tree.root): grid.full_rect()}
    for node in tree.internal_nodes_bfs():
        rect = node_rect.pop(id(node))
        left, right = node.left, node.right
        assert left is not None and right is not None
        wl, wr = tree.subtree_weight(left), tree.subtree_weight(right)
        # Deliberately cut the *shorter* dimension.
        if rect.width < rect.height:
            cut = max(1, min(round(rect.width * wl / (wl + wr)), rect.width - 1))
            rl, rr = rect.split_horizontal(cut)
        else:
            cut = max(1, min(round(rect.height * wl / (wl + wr)), rect.height - 1))
            rl, rr = rect.split_vertical(cut)
        for child, crect in ((left, rl), (right, rr)):
            if child.is_leaf:
                assert child.item is not None
                rects[child.item] = crect
            else:
                node_rect[id(child)] = crect
    return [rects[i] for i in range(len(ratios))]


def fig4_split_direction(
    ratios: Tuple[float, ...] = (0.4, 0.35, 0.25),
    grid: ProcessGrid | None = None,
) -> Fig4Result:
    """Reproduce Fig 4: longer-dimension splits give square-like regions."""
    grid = grid or ProcessGrid(32, 32)
    longer = list(partition_grid(grid, list(ratios)).rects)
    shorter = _shorter_first_partition(list(ratios), grid)
    return Fig4Result(
        longer_first_squareness=partition_squareness(longer),
        shorter_first_squareness=partition_squareness(shorter),
        longer_rects=tuple(longer),
        shorter_rects=tuple(shorter),
    )


@dataclass(frozen=True)
class Sec46Result:
    """Allocation-policy quality (Sec 4.6): default vs naive vs Algorithm 1.

    Paper: default 4.49 s, naive strips 4.08 s (9%), ours 3.72 s (17%).
    """

    default_time: float
    naive_time: float
    ours_time: float

    @property
    def naive_improvement(self) -> float:
        """% improvement of naive strips over the default strategy."""
        return percent_improvement(self.default_time, self.naive_time)

    @property
    def ours_improvement(self) -> float:
        """% improvement of Algorithm 1 over the default strategy."""
        return percent_improvement(self.default_time, self.ours_time)

    def render(self) -> str:
        """Sec 4.6-style comparison."""
        t = Table(["allocation policy", "s/iteration", "improvement %"],
                  title="Sec 4.6 — processor allocation quality (4 siblings, 1024 BG/L)")
        t.add_row(["default sequential", self.default_time, 0.0])
        t.add_row(["naive proportional strips", self.naive_time, self.naive_improvement])
        t.add_row(["Huffman split-tree (ours)", self.ours_time, self.ours_improvement])
        return t.render()


def sec46_allocation_quality(machine: Machine = BLUE_GENE_L) -> Sec46Result:
    """Reproduce Sec 4.6 on the Table 2 four-sibling configuration."""
    config = table2_domains()
    grid = grid_for(1024)
    model = fitted_model(machine)
    siblings = list(config.siblings)

    seq_plan = SequentialStrategy().plan(grid, config.parent, siblings)
    default_time = simulate_iteration(seq_plan, machine).integration_time

    # Naive: strips proportional to point counts.
    naive_alloc = naive_strip_partition(grid, [s.points for s in siblings])
    naive_plan = ParallelSiblingsStrategy().plan(
        grid, config.parent, siblings, ratios=[s.points for s in siblings]
    )
    # Replace the Huffman rectangles with the naive strips.
    from repro.core.scheduler.plan import ExecutionPlan, SiblingAssignment

    naive_plan = ExecutionPlan(
        grid=grid,
        parent=config.parent,
        assignments=tuple(
            SiblingAssignment(s, naive_alloc.rects[i]) for i, s in enumerate(siblings)
        ),
        concurrent=True,
        strategy="naive-strips",
    )
    naive_time = simulate_iteration(naive_plan, machine).integration_time

    ours_plan = ParallelSiblingsStrategy(model).plan(grid, config.parent, siblings)
    ours_time = simulate_iteration(ours_plan, machine).integration_time

    return Sec46Result(
        default_time=default_time, naive_time=naive_time, ours_time=ours_time
    )
