"""Prediction experiments: Fig 3(a) and the Sec 3.1 accuracy claims."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.experiments.common import fitted_model
from repro.analysis.tables import Table
from repro.core.prediction.basis import generate_candidates
from repro.core.prediction.naive import NaivePointsModel
from repro.core.prediction.model import ProfiledDomain
from repro.perfsim.profiling import profile_step_time
from repro.analysis.experiments.common import PROFILE_RANKS
from repro.topology.machines import BLUE_GENE_L, Machine

__all__ = [
    "fig3a_triangulation",
    "Fig3aResult",
    "prediction_error_study",
    "PredictionErrorResult",
]


@dataclass(frozen=True)
class Fig3aResult:
    """The Delaunay triangulation of the 13 basis points (Fig 3(a))."""

    #: Normalised (aspect, points) coordinates of the basis domains.
    points: Tuple[Tuple[float, float], ...]
    #: Triangles as index triples into ``points``.
    triangles: Tuple[Tuple[int, int, int], ...]

    def render(self) -> str:
        """List vertices and triangles (the data Fig 3(a) draws)."""
        t = Table(["#", "aspect (norm)", "points (norm)"],
                  title="Fig 3(a) — Delaunay triangulation of the 13 basis domains")
        for i, (a, p) in enumerate(self.points):
            t.add_row([i, a, p])
        tri = ", ".join(f"({a},{b},{c})" for a, b, c in self.triangles)
        return f"{t.render()}\ntriangles: {tri}"


def fig3a_triangulation(machine: Machine = BLUE_GENE_L) -> Fig3aResult:
    """Reproduce Fig 3(a): the fitted model's triangulation."""
    model = fitted_model(machine)
    tri = model.triangulation
    return Fig3aResult(
        points=tuple((x, y) for x, y in tri.points),
        triangles=tuple(t.vertices() for t in tri.triangles),
    )


@dataclass(frozen=True)
class PredictionErrorResult:
    """Accuracy of the Delaunay model vs the naive univariate model.

    Paper claims: "<6% prediction error for most configurations" for the
    Delaunay model and ">19%" for the naive points-proportional model.
    """

    num_tests: int
    delaunay_mean_error: float
    delaunay_max_error: float
    naive_mean_error: float
    naive_max_error: float
    #: Fraction of test domains with Delaunay error below 6%.
    delaunay_below_6pct: float

    def render(self) -> str:
        """Sec 3.1-style accuracy summary."""
        t = Table(["model", "mean error %", "max error %"],
                  title="Sec 3.1 — prediction error on test domains "
                        "(55,900-94,990 points, aspect 0.5-1.5)")
        t.add_row(["Delaunay (aspect, points)", self.delaunay_mean_error,
                   self.delaunay_max_error])
        t.add_row(["naive (points only)", self.naive_mean_error,
                   self.naive_max_error])
        return (
            f"{t.render()}\n"
            f"{100 * self.delaunay_below_6pct:.1f}% of test domains under the "
            f"6% error bound (paper: 'most configurations')"
        )


def prediction_error_study(
    machine: Machine = BLUE_GENE_L,
    *,
    num_tests: int = 60,
    seed: int = 99,
) -> PredictionErrorResult:
    """Reproduce the Sec 3.1 accuracy comparison.

    Test domains span the paper's stated test range (55,900-94,990 total
    points, aspect 0.5-1.5); "actual" times come from the same cost model
    the basis was profiled on, exactly as the paper measures both with
    real WRF runs.
    """
    model = fitted_model(machine)
    # Fit the naive baseline from the same 13 profiling observations.
    basis = [
        ProfiledDomain(aspect=a, points=p, time=t)
        for (a, p), t in _basis_observations(machine)
    ]
    naive = NaivePointsModel(basis)

    tests = generate_candidates(
        num_tests, seed=seed, min_points=55_900, max_points=94_990
    )
    # Batched prediction (bit-identical to per-spec predict() calls,
    # which the parity tests enforce) — one pass per model.
    d_pred = model.predict_batch(tests)
    n_pred = naive.predict_batch(tests)
    d_errs: List[float] = []
    n_errs: List[float] = []
    for i, spec in enumerate(tests):
        actual = profile_step_time(spec, PROFILE_RANKS, machine)
        d_errs.append(abs(float(d_pred[i]) - actual) / actual * 100.0)
        n_errs.append(abs(float(n_pred[i]) - actual) / actual * 100.0)
    return PredictionErrorResult(
        num_tests=num_tests,
        delaunay_mean_error=sum(d_errs) / len(d_errs),
        delaunay_max_error=max(d_errs),
        naive_mean_error=sum(n_errs) / len(n_errs),
        naive_max_error=max(n_errs),
        delaunay_below_6pct=sum(1 for e in d_errs if e < 6.0) / len(d_errs),
    )


def _basis_observations(machine: Machine):
    """(features, time) pairs of the fitted model's basis (re-profiled)."""
    from repro.core.prediction.basis import select_basis

    candidates = generate_candidates(400, seed=7)
    basis = select_basis(candidates)
    return [
        ((b.aspect_ratio, float(b.points)), profile_step_time(b, PROFILE_RANKS, machine))
        for b in basis
    ]
