"""Scaling experiments: Fig 2 (single-nest scaling) and Fig 15 (speedup)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.ascii_plot import ascii_series
from repro.analysis.experiments.common import (
    compare_strategies_sweep,
    fitted_model,
    grid_for,
)
from repro.analysis.tables import Table
from repro.core.scheduler.strategies import SequentialStrategy
from repro.iosim.model import IoModel
from repro.perfsim.simulate import simulate_iteration
from repro.topology.machines import BLUE_GENE_L, Machine
from repro.workloads.paper_configs import fig2_domains, fig15_domains

__all__ = ["fig2_scaling", "Fig2Result", "fig15_speedup", "Fig15Result"]

DEFAULT_RANKS = (32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class Fig2Result:
    """Execution time of the parent+nest simulation vs processor count."""

    ranks: Tuple[int, ...]
    integration_times: Tuple[float, ...]
    total_times: Tuple[float, ...]
    #: First rank count beyond which doubling gains < 10% (the "knee").
    saturation_ranks: int

    def render(self) -> str:
        """Fig 2-style table + chart."""
        t = Table(["processors", "integration (s/iter)", "total incl I/O (s/iter)"],
                  title="Fig 2 — WRF-like simulation scaling with one 415x445 nest (BG/L)")
        for r, ti, tt in zip(self.ranks, self.integration_times, self.total_times):
            t.add_row([r, ti, tt])
        chart = ascii_series(
            list(self.ranks),
            {"total": list(self.total_times)},
            title="execution time vs processors",
            x_label="processors",
            y_label="s/iteration",
        )
        return (
            f"{t.render()}\n\nsaturates around {self.saturation_ranks} "
            f"processors (paper: ~512)\n\n{chart}"
        )


def fig2_scaling(
    machine: Machine = BLUE_GENE_L,
    ranks: Sequence[int] = DEFAULT_RANKS,
) -> Fig2Result:
    """Reproduce Fig 2: scaling of the 286x307 parent + 415x445 nest run."""
    config = fig2_domains()
    io = IoModel("split")  # BG/L runs used WRF split I/O (Sec 4.2.3)
    integration: List[float] = []
    totals: List[float] = []
    for r in ranks:
        plan = SequentialStrategy().plan(grid_for(r), config.parent, list(config.siblings))
        rep = simulate_iteration(plan, machine, io_model=io)
        integration.append(rep.integration_time)
        totals.append(rep.total_time)

    # "Saturation": where parallel efficiency relative to the smallest run
    # falls below 50% — scaling beyond this point wastes half the cores.
    saturation = ranks[-1]
    base_work = totals[0] * ranks[0]
    for r, t in zip(ranks[1:], totals[1:]):
        if base_work / (t * r) < 0.5:
            saturation = r
            break
    return Fig2Result(
        ranks=tuple(ranks),
        integration_times=tuple(integration),
        total_times=tuple(totals),
        saturation_ranks=saturation,
    )


@dataclass(frozen=True)
class Fig15Result:
    """Scalability and speedup of both strategies (2x 259x229 siblings)."""

    ranks: Tuple[int, ...]
    sequential_times: Tuple[float, ...]
    parallel_times: Tuple[float, ...]

    def speedups(self) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """Speedups relative to the sequential run on the fewest processors."""
        base = self.sequential_times[0]
        seq = tuple(base / t for t in self.sequential_times)
        par = tuple(base / t for t in self.parallel_times)
        return seq, par

    def render(self) -> str:
        """Fig 15-style table + chart."""
        seq_s, par_s = self.speedups()
        t = Table(
            ["processors", "sequential (s)", "concurrent (s)",
             "seq speedup", "conc speedup"],
            title="Fig 15 — scalability and speedup, two 259x229 siblings (BG/L)",
        )
        for row in zip(self.ranks, self.sequential_times, self.parallel_times, seq_s, par_s):
            t.add_row(list(row))
        chart = ascii_series(
            list(self.ranks),
            {"sequential": list(self.sequential_times),
             "concurrent": list(self.parallel_times)},
            title="execution time vs processors",
            x_label="processors",
            y_label="s/iteration",
        )
        return f"{t.render()}\n\n{chart}"


def fig15_speedup(
    machine: Machine = BLUE_GENE_L,
    ranks: Sequence[int] = DEFAULT_RANKS,
    *,
    jobs: int = 1,
) -> Fig15Result:
    """Reproduce Fig 15: both strategies from 32 to 1024 processors."""
    config = fig15_domains()
    comps = compare_strategies_sweep(
        [(config, r) for r in ranks], machine, jobs=jobs
    )
    seq_times: List[float] = []
    par_times: List[float] = []
    for cmp in comps:
        seq_times.append(cmp.sequential.integration_time)
        par_times.append(cmp.parallel.integration_time)
    return Fig15Result(
        ranks=tuple(ranks),
        sequential_times=tuple(seq_times),
        parallel_times=tuple(par_times),
    )
