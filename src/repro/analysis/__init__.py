"""Experiment drivers and reporting.

One function per paper table/figure lives under
:mod:`repro.analysis.experiments`; :mod:`repro.analysis.tables` renders
ASCII tables and :mod:`repro.analysis.ascii_plot` renders series the way
the paper's figures do, so every benchmark can print the rows/series the
paper reports.
"""

from repro.analysis.tables import Table
from repro.analysis.ascii_plot import ascii_series

__all__ = ["Table", "ascii_series"]
