"""A 3-D torus of compute nodes.

The torus is the physical interconnect of IBM Blue Gene/L and Blue Gene/P
(paper Sec 3.3): every node has six neighbours (+/- along x, y, z) and the
links wrap around in each dimension. Processes of the 2-D virtual topology
are *mapped* onto torus nodes; the quality of a mapping is judged by the
number of torus hops between processes that are neighbours in the virtual
topology.

Coordinates are ``(x, y, z)`` tuples with ``0 <= x < X`` etc. Node ranks
enumerate coordinates in x-fastest order (x varies fastest, then y, then z),
matching the XYZ order Blue Gene's default mapping uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import TopologyError
from repro.util.validation import check_positive_int

__all__ = ["TorusCoord", "Link", "Torus3D"]

TorusCoord = Tuple[int, int, int]


@dataclass(frozen=True, order=True)
class Link:
    """A directed torus link from one node to an adjacent node.

    ``dim`` is 0/1/2 for x/y/z and ``direction`` is +1 or -1. Links are
    identified by their *source* coordinate plus direction, so each physical
    wire corresponds to two :class:`Link` objects (one per direction), which
    is how Blue Gene's bidirectional links are provisioned.
    """

    src: TorusCoord
    dim: int
    direction: int

    def __post_init__(self) -> None:
        if self.dim not in (0, 1, 2):
            raise ValueError(f"dim must be 0, 1 or 2, got {self.dim}")
        if self.direction not in (-1, 1):
            raise ValueError(f"direction must be +1 or -1, got {self.direction}")


class Torus3D:
    """A 3-D torus with dimensions ``(X, Y, Z)``.

    Parameters
    ----------
    dims:
        Number of nodes along each of the three dimensions. A dimension of
        size 1 or 2 has no meaningful wraparound benefit (with size 2 the
        wrap link coincides with the direct link); distances account for
        this automatically.
    """

    __slots__ = ("_dims",)

    def __init__(self, dims: Tuple[int, int, int]):
        if len(dims) != 3:
            raise TopologyError(f"torus needs exactly 3 dimensions, got {len(dims)}")
        self._dims = tuple(check_positive_int(d, "torus dimension") for d in dims)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def dims(self) -> Tuple[int, int, int]:
        """The ``(X, Y, Z)`` extents."""
        return self._dims  # type: ignore[return-value]

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ``X * Y * Z``."""
        x, y, z = self._dims
        return x * y * z

    def __repr__(self) -> str:
        x, y, z = self._dims
        return f"Torus3D({x}x{y}x{z})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Torus3D) and other._dims == self._dims

    def __hash__(self) -> int:
        return hash(("Torus3D", self._dims))

    # ------------------------------------------------------------------
    # Coordinates and ranks
    # ------------------------------------------------------------------
    def contains(self, coord: TorusCoord) -> bool:
        """Whether *coord* is a valid node coordinate."""
        return all(0 <= c < d for c, d in zip(coord, self._dims))

    def _check_coord(self, coord: TorusCoord) -> None:
        if len(coord) != 3:
            raise TopologyError(f"coordinate must have 3 components, got {coord!r}")
        if not self.contains(coord):
            raise TopologyError(f"coordinate {coord} outside torus {self._dims}")

    def rank_of(self, coord: TorusCoord) -> int:
        """Linear node rank of *coord* in x-fastest (XYZ) order."""
        self._check_coord(coord)
        x, y, z = coord
        X, Y, _ = self._dims
        return x + X * (y + Y * z)

    def coord_of(self, rank: int) -> TorusCoord:
        """Inverse of :meth:`rank_of`."""
        X, Y, Z = self._dims
        n = X * Y * Z
        if not (0 <= rank < n):
            raise TopologyError(f"rank {rank} outside torus of {n} nodes")
        x = rank % X
        y = (rank // X) % Y
        z = rank // (X * Y)
        return (x, y, z)

    def coords(self) -> Iterator[TorusCoord]:
        """All coordinates in rank order."""
        X, Y, Z = self._dims
        for z in range(Z):
            for y in range(Y):
                for x in range(X):
                    yield (x, y, z)

    # ------------------------------------------------------------------
    # Distances and neighbourhood
    # ------------------------------------------------------------------
    def dim_distance(self, a: int, b: int, dim: int) -> int:
        """Hop distance between positions *a* and *b* along dimension *dim*,

        taking the shorter way around the ring.
        """
        size = self._dims[dim]
        d = abs(a - b) % size
        return min(d, size - d)

    def distance(self, a: TorusCoord, b: TorusCoord) -> int:
        """Minimal hop count between nodes *a* and *b* (L1 on the torus)."""
        self._check_coord(a)
        self._check_coord(b)
        return sum(self.dim_distance(a[i], b[i], i) for i in range(3))

    def neighbors(self, coord: TorusCoord) -> list[TorusCoord]:
        """The up-to-six distinct nearest neighbours of *coord*.

        In a dimension of size 1 the node is its own neighbour along that
        axis and is excluded; in a dimension of size 2 the +1 and -1
        neighbours coincide and are reported once.
        """
        self._check_coord(coord)
        out: list[TorusCoord] = []
        seen = {coord}
        for dim in range(3):
            size = self._dims[dim]
            for direction in (1, -1):
                nbr = self.shift(coord, dim, direction)
                if nbr not in seen:
                    seen.add(nbr)
                    out.append(nbr)
            if size == 1:
                continue
        return out

    def shift(self, coord: TorusCoord, dim: int, steps: int) -> TorusCoord:
        """Move *steps* hops (may be negative) along *dim* with wraparound."""
        self._check_coord(coord)
        if dim not in (0, 1, 2):
            raise TopologyError(f"dim must be 0, 1 or 2, got {dim}")
        out = list(coord)
        out[dim] = (out[dim] + steps) % self._dims[dim]
        return (out[0], out[1], out[2])

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def num_links(self) -> int:
        """Count of directed links (6 per node, minus degenerate dims)."""
        x, y, z = self._dims
        per_node = sum(2 for d in self._dims if d > 1)
        # A dim of size 2 still has two distinct directed links per node
        # (they connect the same pair of nodes but are separate wires on BG).
        return self.num_nodes * per_node

    def link(self, src: TorusCoord, dim: int, direction: int) -> Link:
        """The directed link leaving *src* along (*dim*, *direction*)."""
        self._check_coord(src)
        if self._dims[dim] == 1:
            raise TopologyError(f"dimension {dim} has size 1: no links")
        return Link(src=src, dim=dim, direction=direction)

    def link_dest(self, link: Link) -> TorusCoord:
        """The node a directed link points to."""
        return self.shift(link.src, link.dim, link.direction)
