"""3-D torus interconnect topology and Blue Gene machine models.

This package provides the hardware substrate the paper evaluates on:

* :class:`~repro.topology.torus.Torus3D` — a 3-D torus of compute nodes with
  wraparound links, coordinate/rank conversion and hop distances.
* :mod:`~repro.topology.routing` — deterministic dimension-ordered (XYZ)
  routing, as used by Blue Gene's torus network, producing the exact link
  sequence every message traverses.
* :mod:`~repro.topology.machines` — parameterised models of IBM Blue Gene/L
  and Blue Gene/P (clock rate, cores per node, execution modes, link
  bandwidth and latencies, I/O characteristics) plus helpers that choose the
  torus dimensions backing a given partition size.
"""

from repro.topology.torus import Torus3D, TorusCoord, Link
from repro.topology.routing import route_dimension_ordered, path_links
from repro.topology.machines import (
    Machine,
    ExecutionMode,
    blue_gene_l,
    blue_gene_p,
    BLUE_GENE_L,
    BLUE_GENE_P,
    torus_dims_for_nodes,
)

__all__ = [
    "Torus3D",
    "TorusCoord",
    "Link",
    "route_dimension_ordered",
    "path_links",
    "Machine",
    "ExecutionMode",
    "blue_gene_l",
    "blue_gene_p",
    "BLUE_GENE_L",
    "BLUE_GENE_P",
    "torus_dims_for_nodes",
]
