"""Blue Gene/Q: the 5-D torus target of the paper's future work.

BG/Q nodes carry a 16-core 1.6 GHz A2 processor (up to 64 hardware
threads) on a 5-D torus (dimensions conventionally labelled A, B, C, D,
E with E fixed at 2) with 2 GB/s per link direction. The paper plans
"novel schemes for the 5D torus topology of Blue Gene/Q"; this module
provides the machine constants and partition shapes that the prototype
5-D mapping (:mod:`repro.core.mapping.ndfold`) targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.topology.machines import ExecutionMode, Machine
from repro.topology.torusnd import TorusND, torus_dims_nd_for_nodes
from repro.util.validation import check_positive_int

__all__ = ["BlueGeneQ", "BLUE_GENE_Q", "blue_gene_q_machine", "BLUE_GENE_Q_3D"]


@dataclass(frozen=True)
class BlueGeneQ:
    """Machine constants of Blue Gene/Q relevant to mapping studies."""

    name: str = "BlueGene/Q"
    clock_hz: float = 1.6e9
    cores_per_node: int = 16
    #: MPI ranks per node in the common c16 mode.
    default_ranks_per_node: int = 16
    #: Usable torus link bandwidth per direction.
    link_bandwidth: float = 1.8e9
    software_latency: float = 1.2e-6
    per_hop_latency: float = 0.04e-6

    def torus_for_nodes(self, num_nodes: int) -> TorusND:
        """The 5-D torus backing *num_nodes* nodes (E dimension = 2)."""
        check_positive_int(num_nodes, "num_nodes")
        return TorusND(torus_dims_nd_for_nodes(num_nodes, ndim=5))

    def nodes_for_ranks(self, num_ranks: int, ranks_per_node: int | None = None) -> int:
        """Whole-node count for *num_ranks* MPI ranks."""
        rpn = ranks_per_node or self.default_ranks_per_node
        check_positive_int(num_ranks, "num_ranks")
        check_positive_int(rpn, "ranks_per_node")
        if rpn > self.cores_per_node * 4:  # 4 HW threads per core
            raise ConfigurationError(
                f"{rpn} ranks/node exceeds BG/Q's 64 hardware threads"
            )
        if num_ranks % rpn:
            raise ConfigurationError(
                f"{num_ranks} ranks do not fill whole nodes at {rpn} ranks/node"
            )
        return num_ranks // rpn


#: Shared default instance.
BLUE_GENE_Q = BlueGeneQ()


def blue_gene_q_machine() -> Machine:
    """A BG/Q-class :class:`~repro.topology.machines.Machine` model.

    The perfsim pipeline (and the strong-scaling benchmark that pushes
    it to 131072+ ranks) prices exchanges over the 3-D torus engine, so
    this projects BG/Q's 5-D torus onto the near-cubic 3-D shape of the
    same node count — hop counts are pessimistic relative to the real
    5-D network, which only makes the memory-bound stress test harder.
    Compute and I/O coefficients follow the BG/P calibration recipe
    scaled to BG/Q's clock and link rates.
    """
    return Machine(
        name="BlueGene/Q-3D",
        clock_hz=BLUE_GENE_Q.clock_hz,
        cores_per_node=BLUE_GENE_Q.cores_per_node,
        modes={
            "SMP": ExecutionMode("SMP", 1),
            "c8": ExecutionMode("c8", 8),
            "c16": ExecutionMode("c16", 16),
        },
        default_mode="c16",
        sustained_flops_per_core=1.3e9,  # ~10% of the 12.8 GF/core peak
        link_bandwidth=BLUE_GENE_Q.link_bandwidth,
        software_latency=BLUE_GENE_Q.software_latency,
        per_hop_latency=BLUE_GENE_Q.per_hop_latency,
        step_overhead=4e-3,
        round_skew=1.8e-3,
        collective_cost=0.3e-3,
        io_meta_cost_per_writer=0.3e-3,
        io_bandwidth_max=4.0e9,
        io_per_writer_bandwidth=8e6,
    )


#: Shared perfsim-compatible instance (3-D projected).
BLUE_GENE_Q_3D = blue_gene_q_machine()
