"""Deterministic dimension-ordered routing on the 3-D torus.

Blue Gene's torus network routes packets deterministically (in the default
mode) one dimension at a time, taking the shorter direction around each
ring. The network-contention simulator (:mod:`repro.netsim`) charges every
message against the exact links this module reports, so two messages whose
routes share a link contend for its bandwidth.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.topology.torus import Link, Torus3D, TorusCoord

__all__ = ["route_dimension_ordered", "path_links", "ring_steps_array"]


def _ring_steps(src: int, dst: int, size: int) -> tuple[int, int]:
    """Return ``(direction, count)`` for the shorter way around a ring.

    Ties (exactly half way around an even ring) break toward the positive
    direction, matching a fixed hardware tie-break.
    """
    if size == 1 or src == dst:
        return (1, 0)
    forward = (dst - src) % size
    backward = (src - dst) % size
    if forward <= backward:
        return (1, forward)
    return (-1, backward)


def ring_steps_array(
    src: np.ndarray, dst: np.ndarray, size: np.ndarray | int
) -> Tuple[np.ndarray, np.ndarray]:
    """Closed-form :func:`_ring_steps` over whole arrays.

    ``src``/``dst`` are integer position arrays and ``size`` the ring
    extent (scalar or broadcastable array). Returns ``(direction, count)``
    arrays with the same tie-break as the scalar routine: a tie (even ring,
    exactly half way) routes in the positive direction, and degenerate
    cases (``size == 1`` or ``src == dst``) yield ``(+1, 0)``.
    """
    forward = (dst - src) % size
    backward = (src - dst) % size
    direction = np.where(forward <= backward, 1, -1).astype(np.int64)
    count = np.minimum(forward, backward).astype(np.int64)
    return direction, count


def route_dimension_ordered(torus: Torus3D, src: TorusCoord, dst: TorusCoord) -> List[TorusCoord]:
    """The node sequence a message visits from *src* to *dst* (inclusive).

    Routes fully along x, then y, then z — the XYZ dimension order of the
    Blue Gene torus. The returned list starts at *src* and ends at *dst*;
    for ``src == dst`` it is ``[src]``.
    """
    path = [src]
    cur = src
    for dim in range(3):
        direction, count = _ring_steps(cur[dim], dst[dim], torus.dims[dim])
        for _ in range(count):
            cur = torus.shift(cur, dim, direction)
            path.append(cur)
    if cur != dst:  # pragma: no cover - defensive; cannot happen
        raise AssertionError(f"routing failed: reached {cur}, wanted {dst}")
    return path


def path_links(torus: Torus3D, src: TorusCoord, dst: TorusCoord) -> List[Link]:
    """The directed links traversed by the dimension-ordered route.

    The list has exactly ``torus.distance(src, dst)`` entries; it is empty
    when source and destination coincide (an intra-node transfer that never
    touches the network).
    """
    links: List[Link] = []
    cur = src
    for dim in range(3):
        direction, count = _ring_steps(cur[dim], dst[dim], torus.dims[dim])
        for _ in range(count):
            links.append(Link(src=cur, dim=dim, direction=direction))
            cur = torus.shift(cur, dim, direction)
    return links
