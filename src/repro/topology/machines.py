"""Parameterised models of the IBM Blue Gene/L and Blue Gene/P systems.

The paper evaluates on up to 1024 cores of BG/L and 8192 cores of BG/P
(Sec 4.2). We model each machine by the handful of parameters the
performance simulator needs:

* core clock and *sustained* per-core floating-point rate (WRF typically
  sustains a few percent of peak on these systems),
* cores per node and the execution modes that decide how many MPI ranks
  share a node (BG/L: CO/VN; BG/P: SMP/Dual/VN),
* torus link bandwidth and the two latency components of a message
  (software/injection latency plus a small per-hop latency),
* fixed per-timestep runtime overhead and a logarithmic collective cost,
* parallel-I/O characteristics used by :mod:`repro.iosim`.

The numeric values are anchored to the public Blue Gene system papers
(refs [23, 24] of the paper) and then calibrated against four observations
in the paper itself (see ``DESIGN.md`` Sec 5): a 394x418 sibling costs
about 0.4 s/step on 1024 BG/L cores, the 415x445 nest saturates near 512
cores, communication is roughly 40% of execution, and there are 144
point-to-point messages per step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError, TopologyError
from repro.topology.torus import Torus3D
from repro.util.validation import check_positive_int

__all__ = [
    "ExecutionMode",
    "Machine",
    "blue_gene_l",
    "blue_gene_p",
    "BLUE_GENE_L",
    "BLUE_GENE_P",
    "torus_dims_for_nodes",
]


@dataclass(frozen=True)
class ExecutionMode:
    """An application execution mode: how many MPI ranks run per node."""

    name: str
    ranks_per_node: int

    def __post_init__(self) -> None:
        check_positive_int(self.ranks_per_node, "ranks_per_node")


def torus_dims_for_nodes(num_nodes: int) -> Tuple[int, int, int]:
    """Choose near-cubic torus dimensions ``X <= Y <= Z`` for *num_nodes*.

    Blue Gene partitions come in fixed shapes (a 512-node midplane is
    8x8x8, a full BG/L rack of 1024 nodes is 8x8x16, ...). For arbitrary
    counts we pick the factorisation into three factors that minimises the
    spread ``Z - X``, which matches those shapes for the power-of-two sizes
    used in the paper.
    """
    n = check_positive_int(num_nodes, "num_nodes")
    best: Tuple[int, int, int] | None = None
    cube = round(n ** (1.0 / 3.0)) + 1
    for x in range(1, cube + 1):
        if n % x:
            continue
        m = n // x
        sq = int(math.isqrt(m))
        for y in range(x, sq + 1):
            if m % y:
                continue
            z = m // y
            cand = (x, y, z)
            if best is None or (cand[2] - cand[0], cand[2]) < (best[2] - best[0], best[2]):
                best = cand
    if best is None:  # n is prime and small x didn't divide: 1 x 1 x n
        best = (1, 1, n)
    return best


@dataclass(frozen=True)
class Machine:
    """A torus-interconnected supercomputer model.

    All rates are bytes/s or flop/s; all times are seconds.
    """

    name: str
    clock_hz: float
    cores_per_node: int
    modes: Dict[str, ExecutionMode]
    default_mode: str
    #: Sustained per-core floating point rate for WRF-like stencil code.
    sustained_flops_per_core: float
    #: Usable bandwidth of one torus link, per direction.
    link_bandwidth: float
    #: Per-message software/injection overhead (MPI stack).
    software_latency: float
    #: Additional latency per torus hop traversed.
    per_hop_latency: float
    #: Fixed per-timestep runtime overhead (loop management, BC processing).
    step_overhead: float
    #: Per-exchange-round synchronisation skew: the average extra wait a
    #: bulk-synchronous halo round incurs from rank-to-rank jitter. WRF
    #: performs 36 rounds per step, so this is the dominant component of
    #: the P-independent per-step cost observed in the paper's data.
    round_skew: float
    #: Cost coefficient of the per-step collective operations: the model
    #: charges ``collective_cost * log2(ranks)`` each step.
    collective_cost: float
    #: Collective-I/O metadata/synchronisation cost per participating writer
    #: (this is the term that makes PnetCDF degrade as ranks grow).
    io_meta_cost_per_writer: float
    #: Aggregate file-system bandwidth ceiling.
    io_bandwidth_max: float
    #: Per-writer achievable I/O bandwidth before the ceiling binds.
    io_per_writer_bandwidth: float

    def __post_init__(self) -> None:
        if self.default_mode not in self.modes:
            raise ConfigurationError(
                f"default mode {self.default_mode!r} not in modes {sorted(self.modes)}"
            )
        for mode in self.modes.values():
            if mode.ranks_per_node > self.cores_per_node:
                raise ConfigurationError(
                    f"mode {mode.name!r} uses {mode.ranks_per_node} ranks/node but "
                    f"{self.name} has {self.cores_per_node} cores/node"
                )

    # ------------------------------------------------------------------
    def mode(self, name: str | None = None) -> ExecutionMode:
        """Look up an execution mode (default mode when *name* is None)."""
        key = self.default_mode if name is None else name
        try:
            return self.modes[key]
        except KeyError:
            raise ConfigurationError(
                f"{self.name} has no mode {key!r}; available: {sorted(self.modes)}"
            ) from None

    def nodes_for_ranks(self, num_ranks: int, mode: str | None = None) -> int:
        """Number of nodes hosting *num_ranks* MPI ranks in *mode*."""
        rpn = self.mode(mode).ranks_per_node
        check_positive_int(num_ranks, "num_ranks")
        if num_ranks % rpn:
            raise ConfigurationError(
                f"{num_ranks} ranks do not fill whole nodes at {rpn} ranks/node"
            )
        return num_ranks // rpn

    def torus_for_ranks(self, num_ranks: int, mode: str | None = None) -> Torus3D:
        """The torus backing a partition that hosts *num_ranks* ranks."""
        return Torus3D(torus_dims_for_nodes(self.nodes_for_ranks(num_ranks, mode)))

    def seconds_per_flop(self) -> float:
        """Reciprocal sustained rate — handy for cost formulas."""
        return 1.0 / self.sustained_flops_per_core


def blue_gene_l() -> Machine:
    """IBM Blue Gene/L: 700 MHz PPC440, 2 cores/node, 3-D torus.

    Usable torus link bandwidth is ~154 MB/s of the 175 MB/s raw rate;
    MPI short-message latency on BG/L is a few microseconds.
    """
    return Machine(
        name="BlueGene/L",
        clock_hz=700e6,
        cores_per_node=2,
        modes={
            "CO": ExecutionMode("CO", 1),  # coprocessor: 1 compute rank/node
            "VN": ExecutionMode("VN", 2),  # virtual node: both cores compute
        },
        default_mode="VN",
        sustained_flops_per_core=2.8e8,  # ~10% of the 2.8 GF/core peak
        link_bandwidth=154e6,
        software_latency=3.5e-6,
        per_hop_latency=0.1e-6,
        step_overhead=8e-3,
        round_skew=2.5e-3,
        collective_cost=0.6e-3,
        io_meta_cost_per_writer=0.6e-3,
        io_bandwidth_max=1.0e9,
        io_per_writer_bandwidth=6e6,
    )


def blue_gene_p() -> Machine:
    """IBM Blue Gene/P: 850 MHz PPC450, 4 cores/node, 3-D torus.

    Torus links run at 425 MB/s raw (~375 MB/s usable); DMA-driven
    messaging lowers the software latency relative to BG/L.
    """
    return Machine(
        name="BlueGene/P",
        clock_hz=850e6,
        cores_per_node=4,
        modes={
            "SMP": ExecutionMode("SMP", 1),
            "Dual": ExecutionMode("Dual", 2),
            "VN": ExecutionMode("VN", 4),
        },
        default_mode="VN",
        sustained_flops_per_core=3.7e8,  # ~11% of the 3.4 GF/core peak
        link_bandwidth=375e6,
        software_latency=2.5e-6,
        per_hop_latency=0.07e-6,
        step_overhead=6e-3,
        round_skew=2.2e-3,
        collective_cost=0.45e-3,
        io_meta_cost_per_writer=0.45e-3,
        io_bandwidth_max=1.6e9,
        io_per_writer_bandwidth=5e6,
    )


#: Shared default instances. These are frozen dataclasses, safe to share.
BLUE_GENE_L = blue_gene_l()
BLUE_GENE_P = blue_gene_p()
