"""An N-dimensional torus (the Blue Gene/Q extension).

The paper's conclusion plans "novel schemes for the 5D torus topology of
Blue Gene/Q". This module generalises :class:`~repro.topology.torus.Torus3D`
to arbitrary dimensionality with the same interface: coordinates are
tuples, ranks enumerate first-axis-fastest, distances are the sum of
per-ring shortest distances, and dimension-ordered routing visits the
axes in index order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import TopologyError
from repro.util.validation import check_positive_int

__all__ = ["NdCoord", "NdLink", "TorusND", "torus_dims_nd_for_nodes"]

NdCoord = Tuple[int, ...]


@dataclass(frozen=True, order=True)
class NdLink:
    """A directed link of an N-D torus."""

    src: NdCoord
    dim: int
    direction: int

    def __post_init__(self) -> None:
        if self.dim < 0:
            raise ValueError(f"dim must be non-negative, got {self.dim}")
        if self.direction not in (-1, 1):
            raise ValueError(f"direction must be +1 or -1, got {self.direction}")


class TorusND:
    """An N-dimensional torus with wraparound links in every dimension."""

    __slots__ = ("_dims",)

    def __init__(self, dims: Sequence[int]):
        if not dims:
            raise TopologyError("torus needs at least one dimension")
        self._dims = tuple(check_positive_int(d, "torus dimension") for d in dims)

    # ------------------------------------------------------------------
    @property
    def dims(self) -> Tuple[int, ...]:
        """Per-dimension extents."""
        return self._dims

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self._dims)

    @property
    def num_nodes(self) -> int:
        """Total node count."""
        n = 1
        for d in self._dims:
            n *= d
        return n

    def __repr__(self) -> str:
        return f"TorusND({'x'.join(map(str, self._dims))})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TorusND) and other._dims == self._dims

    def __hash__(self) -> int:
        return hash(("TorusND", self._dims))

    # ------------------------------------------------------------------
    def contains(self, coord: NdCoord) -> bool:
        """Whether *coord* is a valid node coordinate."""
        return len(coord) == self.ndim and all(
            0 <= c < d for c, d in zip(coord, self._dims)
        )

    def _check(self, coord: NdCoord) -> None:
        if not self.contains(coord):
            raise TopologyError(f"coordinate {coord} outside torus {self._dims}")

    def rank_of(self, coord: NdCoord) -> int:
        """Linear rank (first axis fastest)."""
        self._check(coord)
        rank = 0
        stride = 1
        for c, d in zip(coord, self._dims):
            rank += c * stride
            stride *= d
        return rank

    def coord_of(self, rank: int) -> NdCoord:
        """Inverse of :meth:`rank_of`."""
        if not (0 <= rank < self.num_nodes):
            raise TopologyError(f"rank {rank} outside torus of {self.num_nodes}")
        out = []
        for d in self._dims:
            out.append(rank % d)
            rank //= d
        return tuple(out)

    def coords(self) -> Iterator[NdCoord]:
        """All coordinates in rank order."""
        for rank in range(self.num_nodes):
            yield self.coord_of(rank)

    # ------------------------------------------------------------------
    def dim_distance(self, a: int, b: int, dim: int) -> int:
        """Ring distance along *dim*."""
        size = self._dims[dim]
        d = abs(a - b) % size
        return min(d, size - d)

    def distance(self, a: NdCoord, b: NdCoord) -> int:
        """Minimal hop count (L1 over rings)."""
        self._check(a)
        self._check(b)
        return sum(self.dim_distance(x, y, i) for i, (x, y) in enumerate(zip(a, b)))

    def shift(self, coord: NdCoord, dim: int, steps: int) -> NdCoord:
        """Move *steps* (may be negative) along *dim* with wraparound."""
        self._check(coord)
        if not (0 <= dim < self.ndim):
            raise TopologyError(f"dim {dim} outside torus of {self.ndim} dims")
        out = list(coord)
        out[dim] = (out[dim] + steps) % self._dims[dim]
        return tuple(out)

    def neighbors(self, coord: NdCoord) -> List[NdCoord]:
        """All distinct nearest neighbours (up to 2 per dimension)."""
        self._check(coord)
        out: List[NdCoord] = []
        seen = {coord}
        for dim in range(self.ndim):
            for direction in (1, -1):
                nbr = self.shift(coord, dim, direction)
                if nbr not in seen:
                    seen.add(nbr)
                    out.append(nbr)
        return out

    # ------------------------------------------------------------------
    def route(self, src: NdCoord, dst: NdCoord) -> List[NdLink]:
        """Dimension-ordered route: the traversed directed links."""
        self._check(src)
        self._check(dst)
        links: List[NdLink] = []
        cur = src
        for dim in range(self.ndim):
            size = self._dims[dim]
            forward = (dst[dim] - cur[dim]) % size
            backward = (cur[dim] - dst[dim]) % size
            direction, count = (1, forward) if forward <= backward else (-1, backward)
            for _ in range(count):
                links.append(NdLink(src=cur, dim=dim, direction=direction))
                cur = self.shift(cur, dim, direction)
        return links


def torus_dims_nd_for_nodes(num_nodes: int, ndim: int = 5) -> Tuple[int, ...]:
    """Near-balanced *ndim*-factor factorisation of *num_nodes*.

    Blue Gene/Q partitions have a fixed last dimension of 2 (the "E"
    dimension); for 5-D requests on even node counts we honour that and
    balance the remaining four factors. Matches real shapes such as the
    512-node midplane (4, 4, 4, 4, 2).
    """
    n = check_positive_int(num_nodes, "num_nodes")
    check_positive_int(ndim, "ndim")
    if ndim == 1:
        return (n,)

    fixed_e = ndim == 5 and n % 2 == 0
    remaining = n // 2 if fixed_e else n
    free_dims = ndim - 1 if fixed_e else ndim

    def balanced(m: int, k: int) -> List[int]:
        if k == 1:
            return [m]
        # Choose the divisor closest to the k-th root, recurse.
        target = round(m ** (1.0 / k))
        best = 1
        for cand in range(1, m + 1):
            if m % cand:
                continue
            if abs(cand - target) < abs(best - target):
                best = cand
        return [best] + balanced(m // best, k - 1)

    dims = sorted(balanced(remaining, free_dims), reverse=True)
    if fixed_e:
        dims.append(2)
    return tuple(dims)
