"""Memoized execution plans for sweep workloads.

Sweeps re-plan the same configurations over and over: the fuzzer shrinks
a failing scenario by re-building near-identical variants, the planner
prices three strategy/mapping combinations per rank count, experiment
drivers revisit configurations across rank sweeps. Planning is pure —
allocation (Huffman tree + split-tree partitioning) is a deterministic
function of the grid, the sibling specs, and the driving ratios — so the
work is memoized behind a keyed LRU cache:

    (strategy, grid dims, sibling signature, ratios digest) -> ExecutionPlan

The sibling signature is the tuple of frozen :class:`DomainSpec`s (the
parent included — nest weights depend on ``steps_per_parent_step`` and
validation inspects the parent); the ratios digest is the exact float
tuple, ``None`` for the sequential strategy. Cached plans are frozen
dataclasses, shared rather than copied.

The cache is **per process**: every pool worker warms its own copy, so
repeated allocation work inside a sweep is computed once per worker.
Hit/miss counters deliberately live in plain attributes (not the metrics
registry) so per-task metric capture in :mod:`repro.exec.pool` — which
zeroes the registry — can never desynchronise the counters from the
cached entries.

Concurrency and freshness
-------------------------
All cache operations (including :func:`reset_plan_cache`) hold one lock,
so the planning service can reset or retune the cache while recommend
sweeps are mid-flight without corrupting the LRU order or the counters.
:func:`set_plan_cache_policy` optionally gives entries a TTL (measured
on a monotonic clock, injectable for tests): a long-lived service keeps
serving from a warm cache but re-plans once entries go stale. Expired
lookups count as misses and are tallied separately in ``expired``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.core.scheduler.plan import ExecutionPlan
from repro.core.scheduler.strategies import ParallelSiblingsStrategy, SequentialStrategy
from repro.runtime.process_grid import ProcessGrid
from repro.wrf.grid import DomainSpec

__all__ = [
    "PlanCacheStats",
    "sequential_plan",
    "parallel_plan",
    "plan_cache_stats",
    "reset_plan_cache",
    "set_plan_cache_policy",
]

PlanKey = Tuple[str, int, int, Tuple[DomainSpec, ...], Optional[Tuple[float, ...]]]


@dataclass(frozen=True)
class PlanCacheStats:
    """Plan-cache counters for reports and benchmarks."""

    hits: int
    misses: int
    entries: int
    #: Lookups that found an entry past its TTL (also counted as misses).
    expired: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _PlanCache:
    """Bounded LRU of execution plans (same shape as the route cache).

    Every operation holds ``_lock``: the planning service runs lookups
    from many request threads and may reset mid-flight.
    """

    def __init__(self, maxsize: int = 1024):
        self.maxsize = maxsize
        self._data: "OrderedDict[PlanKey, Tuple[ExecutionPlan, float]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.expired = 0
        self.ttl_s: Optional[float] = None
        self._clock: Callable[[], float] = time.monotonic
        self._lock = threading.Lock()

    def get(self, key: PlanKey) -> Optional[ExecutionPlan]:
        with self._lock:
            entry = self._data.get(key)
            if entry is not None and self.ttl_s is not None:
                if self._clock() - entry[1] > self.ttl_s:
                    del self._data[key]
                    self.expired += 1
                    entry = None
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self._data.move_to_end(key)
            return entry[0]

    def put(self, key: PlanKey, value: ExecutionPlan) -> None:
        with self._lock:
            self._data[key] = (value, self._clock())
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def stats(self) -> PlanCacheStats:
        with self._lock:
            return PlanCacheStats(
                hits=self.hits,
                misses=self.misses,
                entries=len(self._data),
                expired=self.expired,
            )

    def set_policy(
        self,
        ttl_s: Optional[float],
        clock: Optional[Callable[[], float]],
    ) -> None:
        with self._lock:
            if ttl_s is not None and ttl_s <= 0:
                raise ValueError(f"ttl_s must be > 0 or None, got {ttl_s}")
            self.ttl_s = ttl_s
            self._clock = clock or time.monotonic

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self.expired = 0


_PLAN_CACHE = _PlanCache()


def _key(
    strategy: str,
    grid: ProcessGrid,
    parent: DomainSpec,
    siblings: Sequence[DomainSpec],
    ratios: Optional[Sequence[float]],
) -> PlanKey:
    digest = None if ratios is None else tuple(float(r) for r in ratios)
    return (strategy, grid.px, grid.py, (parent, *siblings), digest)


def sequential_plan(
    grid: ProcessGrid, parent: DomainSpec, siblings: Sequence[DomainSpec]
) -> ExecutionPlan:
    """The memoized :class:`SequentialStrategy` plan."""
    key = _key("sequential", grid, parent, siblings, None)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = SequentialStrategy().plan(grid, parent, list(siblings))
        _PLAN_CACHE.put(key, plan)
    return plan


def parallel_plan(
    grid: ProcessGrid,
    parent: DomainSpec,
    siblings: Sequence[DomainSpec],
    ratios: Sequence[float],
) -> ExecutionPlan:
    """The memoized :class:`ParallelSiblingsStrategy` plan for *ratios*."""
    key = _key("parallel", grid, parent, siblings, ratios)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = ParallelSiblingsStrategy().plan(
            grid, parent, list(siblings), ratios=list(ratios)
        )
        _PLAN_CACHE.put(key, plan)
    return plan


def plan_cache_stats() -> PlanCacheStats:
    """Current plan-cache counters."""
    return _PLAN_CACHE.stats()


def reset_plan_cache() -> None:
    """Drop all cached plans and zero the counters (tests, benchmarks).

    Safe to call while lookups are in flight on other threads: the cache
    lock serialises the reset against every get/put, so concurrent
    sweeps see either the old entries or an empty cache, never a torn
    LRU or desynchronised counters.
    """
    _PLAN_CACHE.clear()


def set_plan_cache_policy(
    *,
    ttl_s: Optional[float] = None,
    clock: Optional[Callable[[], float]] = None,
) -> None:
    """Set the plan-cache freshness policy.

    ``ttl_s=None`` (the default) keeps entries until LRU eviction —
    the historical behaviour. A positive TTL expires entries *lazily*
    on lookup once they are older than that many seconds on *clock*
    (default: ``time.monotonic``; injectable for tests). Existing
    entries keep their insertion stamps.
    """
    _PLAN_CACHE.set_policy(ttl_s, clock)
