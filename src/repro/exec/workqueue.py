"""Dynamic work queue with sticky worker affinity for stateful tasks.

The sweep pool (:mod:`repro.exec.pool`) fans *stateless* tasks over a
``ProcessPoolExecutor``: any worker may run any task, per-task state is
reset, and that is exactly right for pricing sweeps. Ensemble members
are the opposite — each member is a *stateful* resident (a running
:class:`~repro.steering.driver.SteeredRun` plus its warm plan/placement/
route caches), and bouncing a member between workers would re-pickle its
model state every tick and cold-start every cache it touches.

:class:`AffinityWorkQueue` therefore keeps **persistent workers** each
owning a private task queue, and routes every task by an integer
*affinity* key (``worker = affinity % jobs``). Tasks for one key always
land on the same worker, so whatever state the task functions build
there stays put. Results return on one shared queue and are re-ordered
to submission order before :meth:`gather` returns — callers observe
deterministic ordering no matter how workers interleave.

``jobs=1`` runs everything inline in the calling process through the
same code path (initializer included), which is both the zero-overhead
mode and the determinism oracle for ``jobs=N``.

Task functions must be module-level callables (picklable by reference);
payloads and results cross the process boundary by pickling. Worker
exceptions are re-raised in the parent at :meth:`gather`, and a worker
that dies without reporting (OOM kill, hard crash) turns into a
:class:`~repro.errors.SweepError` naming the lost tasks instead of a
hang.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SweepError
from repro.obs.metrics import counter as _obs_counter

__all__ = ["AffinityWorkQueue"]

_TASKS_DISPATCHED = _obs_counter("exec.queue.tasks")
_WAVES = _obs_counter("exec.queue.waves")

#: Sentinel task id reporting an initializer crash.
_INIT_FAILURE = -1


def _exc_payload(exc: BaseException) -> Tuple[Any, str]:
    """An exception as a (picklable object, formatted traceback) pair."""
    tb = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    try:
        import pickle

        pickle.dumps(exc)
        return exc, tb
    except Exception:
        return SweepError(f"{type(exc).__name__}: {exc}"), tb


def _worker_main(
    index: int,
    task_q: "mp.Queue",
    result_q: "mp.Queue",
    initializer: Optional[Callable[..., None]],
    initargs: Tuple[Any, ...],
) -> None:
    """Worker loop: run the initializer once, then tasks until sentinel."""
    if initializer is not None:
        try:
            initializer(*initargs)
        except BaseException as exc:  # report, don't die silently
            result_q.put((_INIT_FAILURE, False, _exc_payload(exc)))
            return
    while True:
        item = task_q.get()
        if item is None:
            return
        task_id, fn, payload = item
        try:
            result_q.put((task_id, True, fn(payload)))
        except BaseException as exc:
            result_q.put((task_id, False, _exc_payload(exc)))


class AffinityWorkQueue:
    """Persistent workers with affinity routing and ordered gathers.

    Parameters
    ----------
    jobs:
        Worker count; ``1`` executes inline in the calling process.
    initializer / initargs:
        Run once in every worker before any task (and inline for
        ``jobs=1``). ``initargs`` cross via ``Process`` arguments, so
        they may carry inheritable primitives (e.g. ``mp.Lock``) that
        ordinary queues refuse.
    """

    def __init__(
        self,
        jobs: int,
        *,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ):
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._next_task_id = 0
        self._pending: List[int] = []  # submission order of the open wave
        self._inline_results: Dict[int, Tuple[bool, Any]] = {}
        self._closed = False
        self._procs: List[mp.process.BaseProcess] = []
        self._task_qs: List[Any] = []
        self._result_q: Optional[Any] = None
        if jobs == 1:
            if initializer is not None:
                initializer(*initargs)
            return
        ctx = mp.get_context()
        self._result_q = ctx.Queue()
        for index in range(jobs):
            tq = ctx.Queue()
            proc = ctx.Process(
                target=_worker_main,
                args=(index, tq, self._result_q, initializer, initargs),
                daemon=True,
                name=f"repro-ensemble-{index}",
            )
            proc.start()
            self._task_qs.append(tq)
            self._procs.append(proc)

    # ------------------------------------------------------------------
    def worker_for(self, affinity: int) -> int:
        """The worker index tasks with *affinity* are routed to."""
        return affinity % self.jobs

    def submit(self, affinity: int, fn: Callable[[Any], Any], payload: Any) -> int:
        """Queue one task on the worker owning *affinity*; returns its id."""
        if self._closed:
            raise SweepError("AffinityWorkQueue is closed")
        task_id = self._next_task_id
        self._next_task_id += 1
        self._pending.append(task_id)
        _TASKS_DISPATCHED.inc()
        if self.jobs == 1:
            try:
                self._inline_results[task_id] = (True, fn(payload))
            except BaseException as exc:
                self._inline_results[task_id] = (False, _exc_payload(exc))
            return task_id
        self._task_qs[self.worker_for(affinity)].put((task_id, fn, payload))
        return task_id

    def gather(self) -> List[Any]:
        """Results of every submitted-ungathered task, in submission order.

        Re-raises the first task exception (by submission order) after
        draining the wave, so a failure cannot leave stray results
        behind for the next wave.
        """
        wanted = self._pending
        self._pending = []
        _WAVES.inc()
        collected: Dict[int, Tuple[bool, Any]] = {}
        if self.jobs == 1:
            for task_id in wanted:
                collected[task_id] = self._inline_results.pop(task_id)
        else:
            remaining = set(wanted)
            while remaining:
                try:
                    task_id, ok, value = self._result_q.get(timeout=1.0)
                except queue_mod.Empty:
                    dead = [
                        i for i, p in enumerate(self._procs) if not p.is_alive()
                    ]
                    if dead:
                        raise SweepError(
                            f"ensemble worker(s) {dead} died with "
                            f"{len(remaining)} task(s) outstanding"
                        ) from None
                    continue
                if task_id == _INIT_FAILURE:
                    exc, tb = value
                    raise SweepError(
                        f"worker initializer failed:\n{tb}"
                    ) from exc
                collected[task_id] = (ok, value)
                remaining.discard(task_id)
        results: List[Any] = []
        failure: Optional[Tuple[Any, str]] = None
        for task_id in wanted:
            ok, value = collected[task_id]
            if ok:
                results.append(value)
            elif failure is None:
                failure = value
        if failure is not None:
            exc, tb = failure
            exc.__cause__ = SweepError(f"worker task failed:\n{tb}")
            raise exc
        return results

    def run_wave(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Tuple[int, Any]],
    ) -> List[Any]:
        """Submit ``(affinity, payload)`` tasks and gather, in order."""
        for affinity, payload in tasks:
            self.submit(affinity, fn, payload)
        return self.gather()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        self._pending = []
        self._inline_results.clear()
        for tq in self._task_qs:
            try:
                tq.put(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for tq in self._task_qs:
            tq.close()
        if self._result_q is not None:
            self._result_q.close()

    def __enter__(self) -> "AffinityWorkQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
