"""Supervised worker processes: spawn, readiness handshake, respawn.

The sweep pool (:mod:`repro.exec.pool`) covers fan-out/fan-in batch
work; :class:`SupervisedProcess` covers the other worker shape the
codebase needs — a **long-lived resident process** (a planning-service
shard) that must announce readiness before taking traffic and be
respawnable after a crash.

Design points:

* **spawn, not fork.** Workers are created with the ``spawn`` start
  method: a respawn happens from a monitor thread while dozens of
  request threads hold locks (cache locks, metric locks, socket
  internals), and a forked child would inherit those locks in whatever
  state the fork caught them — a classic post-fork deadlock. A spawned
  child starts from a clean interpreter; it costs an import, which the
  supervisor hides behind the readiness handshake.
* **readiness handshake.** The child target receives a one-shot pipe
  as its first argument and must send exactly one *ready payload*
  (e.g. the port it bound) when it is fit for traffic — after any
  warm-start preloading, so a restarted worker re-enters rotation with
  hot caches, never cold. :meth:`start` / :meth:`respawn` block until
  that payload arrives (or raise :class:`WorkerSpawnError` on timeout
  or child death).
* **generation counter.** Every (re)spawn increments ``generation``;
  supervisors use it to tell a restarted worker's state from its
  predecessor's (metric snapshots, connection pools).
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Any, Callable, Optional, Tuple

from repro.errors import ReproError

__all__ = ["SupervisedProcess", "WorkerSpawnError"]


class WorkerSpawnError(ReproError):
    """A supervised worker failed to start or announce readiness."""


class SupervisedProcess:
    """One respawnable spawn-context worker with a readiness handshake.

    *target* runs in the child as ``target(ready_conn, *args)`` and
    must call ``ready_conn.send(payload)`` exactly once when ready; the
    payload is returned from :meth:`start` and :meth:`respawn` and kept
    in :attr:`ready_payload`. *target* must be a picklable top-level
    function (a spawn-context requirement).
    """

    def __init__(
        self,
        target: Callable[..., None],
        args: Tuple[Any, ...] = (),
        *,
        name: str = "worker",
        ready_timeout_s: float = 120.0,
    ) -> None:
        self.target = target
        self.args = args
        self.name = name
        self.ready_timeout_s = ready_timeout_s
        self.generation = 0
        self.restarts = 0
        self.ready_payload: Any = None
        self._ctx = multiprocessing.get_context("spawn")
        self._proc: Optional[multiprocessing.process.BaseProcess] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _spawn(self) -> Any:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=self.target,
            args=(child_conn, *self.args),
            name=f"{self.name}:gen{self.generation + 1}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the child's end lives in the child now
        try:
            if not parent_conn.poll(self.ready_timeout_s):
                proc.terminate()
                proc.join(timeout=10)
                raise WorkerSpawnError(
                    f"{self.name}: no readiness payload within "
                    f"{self.ready_timeout_s}s"
                )
            payload = parent_conn.recv()
        except (EOFError, OSError) as exc:
            proc.join(timeout=10)
            raise WorkerSpawnError(
                f"{self.name}: died before announcing readiness "
                f"(exitcode {proc.exitcode})"
            ) from exc
        finally:
            parent_conn.close()
        self._proc = proc
        self.generation += 1
        self.ready_payload = payload
        return payload

    def start(self) -> Any:
        """Spawn the worker; blocks until its ready payload arrives."""
        with self._lock:
            if self._proc is not None:
                raise WorkerSpawnError(f"{self.name}: already started")
            return self._spawn()

    def respawn(self) -> Any:
        """Replace the (dead or doomed) worker with a fresh generation."""
        with self._lock:
            old = self._proc
            if old is not None and old.is_alive():
                old.terminate()
            if old is not None:
                old.join(timeout=10)
            self._proc = None
            self.restarts += 1
            return self._spawn()

    # ------------------------------------------------------------------
    def is_alive(self) -> bool:
        proc = self._proc
        return proc is not None and proc.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        proc = self._proc
        return None if proc is None else proc.exitcode

    @property
    def pid(self) -> Optional[int]:
        proc = self._proc
        return None if proc is None else proc.pid

    def terminate(self, join_timeout_s: float = 10.0) -> None:
        """Stop the worker (SIGTERM) and reap it."""
        with self._lock:
            proc = self._proc
            if proc is None:
                return
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=join_timeout_s)
            if proc.is_alive():  # pragma: no cover - stuck child
                proc.kill()
                proc.join(timeout=join_timeout_s)
            self._proc = None

    def kill(self) -> None:
        """SIGKILL the worker without reaping bookkeeping (crash tests)."""
        proc = self._proc
        if proc is not None and proc.is_alive():
            proc.kill()
