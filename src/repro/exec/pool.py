"""Process-pool sweep execution with order-stable, seed-stable results.

Everything downstream of the simulator is an embarrassingly parallel
sweep: the capacity planner prices three strategy/mapping combinations
per rank count, every experiment driver loops configurations, the fuzzer
evaluates hundreds of independent scenarios. :class:`SweepRunner` fans
such a task list out over a ``ProcessPoolExecutor`` while keeping the
**determinism contract** the rest of the repo depends on:

* results come back in input order, regardless of worker scheduling;
* each task is a pure function of its (picklable) spec, so ``jobs=1``
  and ``jobs=N`` produce byte-identical artifacts;
* with ``capture_metrics=True`` every task runs against a freshly-zeroed
  metrics registry (and route cache — the one registry-coupled cache),
  its per-task snapshot is captured, and the parent folds the snapshots
  **in task order** with the associative
  :func:`~repro.obs.metrics.merge_snapshots`, so the merged snapshot is
  also identical for every worker count.

Worker death (OOM killer, a segfaulting native library) is transient
from the sweep's point of view: completed chunks are kept, unfinished
chunks are resubmitted to a fresh pool, bounded by ``max_retries``.
Task-raised exceptions are *not* retried — they propagate to the caller
unchanged.

When **not** to use workers: tiny sweeps. Dispatch costs roughly one
process spawn per worker plus a pickle round-trip per chunk; a sweep
whose total work is under ~100 ms is faster inline (``jobs=1``). See
``docs/parallel.md``.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SweepError
from repro.obs.metrics import counter as _obs_counter
from repro.obs.metrics import merge_snapshots, registry
from repro.obs.trace import tracer

__all__ = ["SweepResult", "SweepRunner", "run_sweep"]

Snapshot = Dict[str, Dict[str, Any]]

# Observability: sweep fan-out volume and health. Incremented *after* a
# sweep completes so metric capture (which zeroes the registry per task
# when running inline) cannot eat them mid-run.
_TASKS = _obs_counter("exec.sweep.tasks")
_CHUNKS = _obs_counter("exec.sweep.chunks")
_RETRIES = _obs_counter("exec.sweep.retries")


def _reset_task_state() -> None:
    """Zero all state a per-task metrics delta must not inherit.

    The route and placement caches are the caches whose hit/miss counters
    live in the metrics registry (they must always equal
    ``route_cache_stats()`` / ``placement_cache_stats()``); dropping them
    together with the registry keeps that invariant inside every captured
    delta — and makes each task's delta independent of which tasks ran
    earlier in the same process, which is what makes the merged snapshot
    identical across worker counts.
    """
    from repro.exec.placementcache import reset_placement_cache
    from repro.netsim.engine import reset_route_cache

    reset_route_cache()
    reset_placement_cache()
    registry().reset()


def _prune_untouched(snap: Snapshot) -> Snapshot:
    """Drop metrics the task never touched from a captured delta.

    A snapshot lists *every registered* metric, and registration follows
    imports — which differ between the calling process and a fresh pool
    worker. Keeping only touched metrics makes each delta a function of
    what the task *did*, so merged snapshots are byte-identical across
    worker counts. (Untouched metrics are merge-neutral anyway.)

    ``proc.*`` metrics (RSS and friends, see
    :func:`repro.obs.metrics.sample_rss`) are dropped even when touched:
    they describe the *process*, not the task, so they necessarily
    differ between ``jobs=1`` and pool workers and would break the
    byte-identical merge contract.
    """
    pruned: Snapshot = {}
    for name, m in snap.items():
        if name.startswith("proc."):
            continue
        kind = m["type"]
        if kind == "counter" and m["value"] == 0:
            continue
        if kind == "gauge" and m["updates"] == 0:
            continue
        if kind == "histogram" and m["count"] == 0 and m["sum"] == 0.0:
            continue
        pruned[name] = m
    return pruned


def _run_chunk(
    fn: Callable[[Any], Any],
    start: int,
    items: Sequence[Any],
    capture: bool,
) -> Tuple[int, List[Any], Optional[List[Snapshot]]]:
    """Execute one contiguous chunk of tasks (in a worker or inline)."""
    tr = tracer()
    with tr.span(
        "exec.worker",
        {"start": start, "tasks": len(items)} if tr.enabled else None,
    ):
        if not capture:
            return start, [fn(item) for item in items], None
        results: List[Any] = []
        snaps: List[Snapshot] = []
        for item in items:
            _reset_task_state()
            results.append(fn(item))
            snaps.append(_prune_untouched(registry().snapshot()))
        return start, results, snaps


def _worker_init(
    initializer: Optional[Callable[..., None]],
    initargs: Tuple[Any, ...],
    shared: Tuple[Any, ...] = (),
) -> None:
    if shared:
        # Map published message columns before the first chunk arrives:
        # attachment is memoised per process, so this moves the one-time
        # shm_open/mmap off the first task's critical path. Tasks reach
        # the same zero-copy batches via attach_halo_batch(handle).
        from repro.exec.shm import attach_arrays

        for handle in shared:
            attach_arrays(handle)
    if initializer is not None:
        initializer(*initargs)


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one sweep: per-task results plus fan-out bookkeeping."""

    #: Task results, in input order.
    results: Tuple[Any, ...]
    #: Worker processes used (1 = inline, no pool).
    jobs: int
    #: Number of dispatched chunks.
    chunks: int
    #: Worker-death retries that were needed.
    retries: int
    #: Merged per-task metrics snapshot (``capture_metrics`` only).
    metrics: Optional[Snapshot] = None
    #: Unmerged per-task snapshots, in task order (``capture_metrics``
    #: only) — for callers that stop consuming results early and must
    #: fold exactly the consumed prefix.
    task_metrics: Optional[Tuple[Snapshot, ...]] = None


class SweepRunner:
    """Fan a list of picklable task specs out over a process pool.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` runs every task inline in the calling
        process — same code path, no pool — which is the reference
        execution the parallel runs must match byte for byte.
    chunksize:
        Tasks per dispatched chunk (default: ``ceil(n / (jobs * 4))``,
        clamped to at least 1 — four waves per worker balances pickle
        overhead against load balance). Chunking never affects results
        or captured metrics, only scheduling granularity.
    capture_metrics:
        Capture a per-task metrics-registry snapshot and fold them in
        task order into :attr:`SweepResult.metrics`. Each task then runs
        against a zeroed registry and route cache; in ``jobs=1`` mode
        that zeroing happens in the *calling* process, so only enable
        this when the sweep owns the registry for the duration (the
        fuzzer and the CLI entry points do).
    initializer / initargs:
        Ran once per worker before its first chunk (and once inline for
        ``jobs=1``) — the place to warm per-process caches: fit the
        performance model once per worker instead of once per task, warm
        the netsim route cache, etc. Must be picklable (module-level).
    max_retries:
        How many times the whole pool may die (``BrokenProcessPool``)
        before the sweep gives up with :class:`~repro.errors.SweepError`.
    shared:
        :class:`~repro.exec.shm.SharedColumns` handles every worker
        pre-attaches before its first chunk. Tasks that route large
        message batches put the handle (a few hundred bytes) in their
        spec instead of the columns themselves and map the shared pages
        zero-copy; see ``docs/parallel.md``.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        chunksize: Optional[int] = None,
        capture_metrics: bool = False,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        max_retries: int = 2,
        shared: Tuple[Any, ...] = (),
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.jobs = jobs
        self.chunksize = chunksize
        self.capture_metrics = capture_metrics
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self.max_retries = max_retries
        self.shared = tuple(shared)

    # ------------------------------------------------------------------
    def _chunks(self, items: Sequence[Any]) -> List[Tuple[int, Sequence[Any]]]:
        size = self.chunksize
        if size is None:
            size = max(1, math.ceil(len(items) / (self.jobs * 4)))
        return [
            (start, items[start : start + size])
            for start in range(0, len(items), size)
        ]

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> SweepResult:
        """Run ``fn`` over *items*; results come back in input order.

        ``fn`` must be a module-level callable and every item picklable
        (they cross a process boundary when ``jobs > 1``). Exceptions
        raised by a task propagate unchanged; remaining queued chunks
        are cancelled.
        """
        items = list(items)
        n = len(items)
        results: List[Any] = [None] * n
        per_task_snaps: List[Optional[Snapshot]] = [None] * n
        chunks = self._chunks(items) if n else []
        retries = 0

        tr = tracer()
        with tr.span(
            "exec.dispatch",
            {"tasks": n, "jobs": self.jobs, "chunks": len(chunks)}
            if tr.enabled
            else None,
        ):
            if self.jobs == 1:
                _worker_init(self.initializer, self.initargs, self.shared)
                for start, sub in chunks:
                    _, out, chunk_snaps = _run_chunk(
                        fn, start, sub, self.capture_metrics
                    )
                    self._place(results, per_task_snaps, start, out, chunk_snaps)
            elif n:
                retries = self._run_pool(fn, chunks, results, per_task_snaps)

        merged: Optional[Snapshot] = None
        task_metrics: Optional[Tuple[Snapshot, ...]] = None
        if self.capture_metrics:
            with tr.span("exec.merge", {"tasks": n} if tr.enabled else None):
                merged = {}
                for snap in per_task_snaps:
                    if snap is not None:
                        merged = merge_snapshots(merged, snap)
            task_metrics = tuple(s for s in per_task_snaps if s is not None)

        _TASKS.inc(n)
        _CHUNKS.inc(len(chunks))
        _RETRIES.inc(retries)
        return SweepResult(
            results=tuple(results),
            jobs=self.jobs,
            chunks=len(chunks),
            retries=retries,
            metrics=merged,
            task_metrics=task_metrics,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _place(
        results: List[Any],
        per_task_snaps: List[Optional[Snapshot]],
        start: int,
        out: List[Any],
        chunk_snaps: Optional[List[Snapshot]],
    ) -> None:
        results[start : start + len(out)] = out
        if chunk_snaps is not None:
            per_task_snaps[start : start + len(chunk_snaps)] = chunk_snaps

    def _run_pool(
        self,
        fn: Callable[[Any], Any],
        chunks: List[Tuple[int, Sequence[Any]]],
        results: List[Any],
        per_task_snaps: List[Optional[Snapshot]],
    ) -> int:
        """Dispatch chunks, retrying unfinished ones across pool deaths."""
        pending: Dict[int, Tuple[int, Sequence[Any]]] = dict(enumerate(chunks))
        retries = 0
        while pending:
            broken = False
            executor = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending)),
                initializer=_worker_init,
                initargs=(self.initializer, self.initargs, self.shared),
            )
            try:
                futures = {
                    executor.submit(_run_chunk, fn, start, sub, self.capture_metrics): cid
                    for cid, (start, sub) in pending.items()
                }
                for fut in as_completed(futures):
                    cid = futures[fut]
                    try:
                        start, out, chunk_snaps = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        break
                    self._place(results, per_task_snaps, start, out, chunk_snaps)
                    del pending[cid]
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
            if pending and not broken:
                # as_completed drained without a pool break yet chunks
                # remain: can only happen via a task exception above
                # (propagated out of the for loop through `finally`).
                break  # pragma: no cover - defensive
            if pending:
                retries += 1
                if retries > self.max_retries:
                    raise SweepError(
                        f"worker pool died {retries} times with "
                        f"{len(pending)} chunks unfinished; giving up "
                        f"(max_retries={self.max_retries})"
                    )
        return retries


def run_sweep(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    jobs: int = 1,
    **kwargs: Any,
) -> SweepResult:
    """One-shot convenience wrapper around :meth:`SweepRunner.map`."""
    return SweepRunner(jobs, **kwargs).map(fn, items)
