"""Memoized placements for sweep workloads.

Experiment drivers rebuild the same placement over and over: a rank
sweep prices every mapping at every rank count, the fuzzer shrinks a
failing scenario through near-identical variants, ``simulate_iteration``
re-places the grid on every call when no placement is supplied. Placing
is pure — a deterministic function of the mapping heuristic, the process
grid, the slot space, and the partition rectangles — so the work is
memoized behind a keyed LRU cache:

    (mapping name, grid dims, torus dims, ranks-per-node, rects
    signature) -> Placement

Cached placements are frozen dataclasses, shared rather than copied.
The cache is **per process**: every pool worker warms its own copy.

Eviction is **byte-budgeted**, not entry-counted: a 131k-rank placement
is ~3 MB resident while a 512-rank one is ~12 kB, so a fixed entry cap
would let residency grow with the rank count. The budget comes from
:func:`repro.netsim.budget.placement_cache_budget_bytes`
(``REPRO_PLACEMENT_CACHE_MB``, default an eighth of
``REPRO_NETSIM_MEM_MB``) and is re-read on every insert; entries are
evicted LRU-first past it, and an entry larger than the whole budget is
never retained.

Unlike the plan cache, the hit/miss/eviction counters are mirrored into
the observability registry (``exec.placement_cache.*``, the route-cache
pattern): the plain attributes stay the source of truth and
:func:`repro.exec.pool._reset_task_state` clears the cache per task, so
per-task metric capture and the counters can never desynchronise.

Every operation (including :func:`reset_placement_cache`) holds one
lock, so the planning service can reset or retune the cache while
recommend sweeps are mid-flight; :func:`set_placement_cache_policy`
optionally gives entries a TTL on an injectable monotonic clock (the
same policy shape as the plan cache).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple

from repro.netsim.budget import placement_cache_budget_bytes
from repro.obs.metrics import counter as _obs_counter
from repro.obs.metrics import gauge as _obs_gauge
from repro.runtime.process_grid import GridRect, ProcessGrid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mapping.base import Mapping, Placement, SlotSpace

__all__ = [
    "PlacementCacheStats",
    "cached_placement",
    "placement_cache_stats",
    "reset_placement_cache",
    "set_placement_cache_policy",
]

PlacementKey = Tuple[
    str, int, int, Tuple[int, int, int], int, Optional[Tuple[GridRect, ...]]
]

# Bound once at import; registry resets zero these in place, so the
# references never go stale (same contract as the netsim route cache).
_HITS = _obs_counter("exec.placement_cache.hits")
_MISSES = _obs_counter("exec.placement_cache.misses")
_EVICTIONS = _obs_counter("exec.placement_cache.evictions")
_EXPIRED = _obs_counter("exec.placement_cache.expired")
_CACHE_BYTES = _obs_gauge("exec.placement_cache.resident_bytes")

#: Rough per-slot overhead of the tuple-of-tuples form of a placement
#: (tuple headers + small-int boxing) on top of the coordinate array.
_SLOT_OVERHEAD_BYTES = 200


def _placement_nbytes(placement: "Placement") -> int:
    """Resident-byte estimate of one cached placement.

    The dominant terms: the ``(ranks, 3)`` int64 slots array (plus its
    node-ranks sibling, cached on first use — counted up front so the
    budget holds either way) and the boxed tuple form.
    """
    arr = placement.slots_array()
    return arr.nbytes * 2 + len(placement.slots) * _SLOT_OVERHEAD_BYTES


@dataclass(frozen=True)
class PlacementCacheStats:
    """Placement-cache counters for reports and benchmarks."""

    hits: int
    misses: int
    entries: int
    evictions: int = 0
    resident_bytes: int = 0
    #: Lookups that found an entry past its TTL (also counted as misses).
    expired: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _PlacementCache:
    """Byte-budgeted LRU of placements (same shape as the route cache).

    Every operation holds ``_lock``: the planning service runs lookups
    from many request threads and may reset mid-flight.
    """

    def __init__(self, maxsize: int = 512):
        self.maxsize = maxsize
        self._data: "OrderedDict[PlacementKey, Tuple[Placement, int, float]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expired = 0
        self.bytes = 0
        self.ttl_s: Optional[float] = None
        self._clock: Callable[[], float] = time.monotonic
        self._lock = threading.Lock()

    def get(self, key: PlacementKey) -> "Optional[Placement]":
        with self._lock:
            entry = self._data.get(key)
            if entry is not None and self.ttl_s is not None:
                if self._clock() - entry[2] > self.ttl_s:
                    del self._data[key]
                    self.bytes -= entry[1]
                    self.expired += 1
                    _EXPIRED.inc()
                    _CACHE_BYTES.set(self.bytes)
                    entry = None
            if entry is None:
                self.misses += 1
                _MISSES.inc()
                return None
            self.hits += 1
            _HITS.inc()
            self._data.move_to_end(key)
            return entry[0]

    def put(self, key: PlacementKey, value: "Placement") -> None:
        nbytes = _placement_nbytes(value)
        budget = placement_cache_budget_bytes()
        with self._lock:
            if nbytes > budget:
                # Larger than the whole budget: hand it out, never retain it.
                self.evictions += 1
                _EVICTIONS.inc()
                return
            old = self._data.pop(key, None)
            if old is not None:
                self.bytes -= old[1]
            self._data[key] = (value, nbytes, self._clock())
            self.bytes += nbytes
            while self._data and (
                len(self._data) > self.maxsize or self.bytes > budget
            ):
                _, (_, evicted_nbytes, _) = self._data.popitem(last=False)
                self.bytes -= evicted_nbytes
                self.evictions += 1
                _EVICTIONS.inc()
            _CACHE_BYTES.set(self.bytes)

    def stats(self) -> PlacementCacheStats:
        with self._lock:
            return PlacementCacheStats(
                hits=self.hits,
                misses=self.misses,
                entries=len(self._data),
                evictions=self.evictions,
                resident_bytes=self.bytes,
                expired=self.expired,
            )

    def set_policy(
        self,
        ttl_s: Optional[float],
        clock: Optional[Callable[[], float]],
    ) -> None:
        with self._lock:
            if ttl_s is not None and ttl_s <= 0:
                raise ValueError(f"ttl_s must be > 0 or None, got {ttl_s}")
            self.ttl_s = ttl_s
            self._clock = clock or time.monotonic

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.expired = 0
            self.bytes = 0
            _HITS.reset()
            _MISSES.reset()
            _EVICTIONS.reset()
            _EXPIRED.reset()
            _CACHE_BYTES.reset()


_PLACEMENT_CACHE = _PlacementCache()


def _key(
    mapping: "Mapping",
    grid: ProcessGrid,
    space: "SlotSpace",
    rects: Optional[Sequence[GridRect]],
) -> PlacementKey:
    signature = None if rects is None else tuple(rects)
    return (
        mapping.name,
        grid.px,
        grid.py,
        space.torus.dims,
        space.ranks_per_node,
        signature,
    )


def cached_placement(
    mapping: "Mapping",
    grid: ProcessGrid,
    space: "SlotSpace",
    rects: Optional[Sequence[GridRect]] = None,
) -> "Placement":
    """The memoized ``mapping.place(grid, space, rects)`` placement.

    Heuristics are keyed by :attr:`Mapping.name`, so two instances of the
    same mapping class share entries (mappings carry no other state).
    """
    key = _key(mapping, grid, space, rects)
    placement = _PLACEMENT_CACHE.get(key)
    if placement is None:
        placement = mapping.place(grid, space, rects)
        _PLACEMENT_CACHE.put(key, placement)
    return placement


def placement_cache_stats() -> PlacementCacheStats:
    """Current placement-cache counters."""
    return _PLACEMENT_CACHE.stats()


def reset_placement_cache() -> None:
    """Drop all cached placements and zero the counters (tests, benchmarks).

    Safe to call while lookups are in flight on other threads: the cache
    lock serialises the reset against every get/put, so concurrent
    sweeps see either the old entries or an empty cache, never a torn
    LRU or desynchronised counters.
    """
    _PLACEMENT_CACHE.clear()


def set_placement_cache_policy(
    *,
    ttl_s: Optional[float] = None,
    clock: Optional[Callable[[], float]] = None,
) -> None:
    """Set the placement-cache freshness policy.

    ``ttl_s=None`` (the default) keeps entries until byte-budget
    eviction — the historical behaviour. A positive TTL expires entries
    *lazily* on lookup once they are older than that many seconds on
    *clock* (default: ``time.monotonic``; injectable for tests).
    """
    _PLACEMENT_CACHE.set_policy(ttl_s, clock)
