"""Parallel execution fabric: pool sweeps and plan memoization.

``repro.exec`` is the layer that makes every sweep in the repo scale
with local cores without changing a single result:

* :mod:`repro.exec.pool` — :class:`SweepRunner`, the process-pool fan-out
  with order-preserving results and deterministic metric merging;
* :mod:`repro.exec.plancache` — memoized execution plans keyed by
  ``(grid dims, sibling signature, ratios digest)``;
* :mod:`repro.exec.placementcache` — memoized placements keyed by
  ``(mapping name, grid dims, torus dims, ranks-per-node, rects)``;
* :mod:`repro.exec.shm` — zero-copy message columns over
  ``multiprocessing.shared_memory`` so sweep workers map large halo
  batches instead of pickling them;
* :mod:`repro.exec.workqueue` — :class:`AffinityWorkQueue`, persistent
  workers with sticky affinity routing for *stateful* residents (the
  ensemble fabric's members), inline at ``jobs=1``.

Both caches evict against byte budgets derived from
``REPRO_NETSIM_MEM_MB`` (:mod:`repro.netsim.budget`), so residency
scales with the configured memory, not the rank count. See
``docs/parallel.md`` for the determinism contract and when *not* to
use workers.
"""

from repro.exec.placementcache import (
    PlacementCacheStats,
    cached_placement,
    placement_cache_stats,
    reset_placement_cache,
    set_placement_cache_policy,
)
from repro.exec.plancache import (
    PlanCacheStats,
    parallel_plan,
    plan_cache_stats,
    reset_plan_cache,
    sequential_plan,
    set_plan_cache_policy,
)
from repro.exec.pool import SweepResult, SweepRunner, run_sweep
from repro.exec.procs import SupervisedProcess, WorkerSpawnError
from repro.exec.workqueue import AffinityWorkQueue
from repro.exec.shm import (
    SharedColumns,
    attach_halo_batch,
    release_all_shared,
    share_halo_batch,
)

__all__ = [
    "SharedColumns",
    "share_halo_batch",
    "attach_halo_batch",
    "release_all_shared",
    "SweepResult",
    "SweepRunner",
    "run_sweep",
    "AffinityWorkQueue",
    "SupervisedProcess",
    "WorkerSpawnError",
    "PlanCacheStats",
    "sequential_plan",
    "parallel_plan",
    "plan_cache_stats",
    "reset_plan_cache",
    "set_plan_cache_policy",
    "PlacementCacheStats",
    "cached_placement",
    "placement_cache_stats",
    "reset_placement_cache",
    "set_placement_cache_policy",
]
