"""Zero-copy message columns over ``multiprocessing.shared_memory``.

A 131k-rank halo exchange round is ~0.5M messages; its ``(src, dst,
nbytes)`` columns are tens of megabytes. Pickling those columns into
every sweep task (and holding a private copy per worker) multiplies the
footprint by the worker count — exactly the kind of growth the
``REPRO_NETSIM_MEM_MB`` budget is meant to bound. This module instead
publishes the columns **once** into a ``multiprocessing.shared_memory``
segment; what crosses the process boundary is a :class:`SharedColumns`
handle of a few hundred bytes, and every worker maps the same physical
pages read-only.

The handle also carries the batch's route-cache digest, so attaching
never rehashes the columns: an attached :class:`~repro.runtime.halo.
HaloBatch` keys the network engine's route cache identically to (and as
cheaply as) the batch it was published from.

Lifecycle
---------
* The **publisher** calls :func:`share_halo_batch` (or the lower-level
  :func:`share_arrays`) and later :func:`release` /
  :func:`release_all_shared` to unlink the segments. Publisher-side
  release is mandatory — segments outlive the process otherwise.
* **Consumers** call :func:`attach_halo_batch` with the handle; the
  attachment is memoised per process (repeat tasks in one worker reuse
  the mapping) and closed automatically at interpreter exit.

Workers attach lazily on first use; pre-attaching in a pool initializer
(:func:`repro.analysis.experiments.common.warm_worker` accepts handles,
as does :class:`repro.exec.pool.SweepRunner` via ``shared=``) just moves
the one-time ``shm_open``/``mmap`` off the first task's critical path.

Attachment detail: the stdlib ``resource_tracker`` would count an
attach-only open as an ownership claim and destroy the segment when the
*worker* exits; attachments therefore opt out of tracking (``track=False``
on Python >= 3.13, unregister otherwise) — only the publisher unlinks.
"""

from __future__ import annotations

import atexit
import hashlib
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

from repro.errors import ReproError
from repro.runtime.halo import HaloBatch

__all__ = [
    "ColumnSpec",
    "SharedColumns",
    "share_arrays",
    "attach_arrays",
    "share_halo_batch",
    "attach_halo_batch",
    "release",
    "release_all_shared",
    "shm_stats",
]


@dataclass(frozen=True)
class ColumnSpec:
    """Layout of one column inside a shared segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        n = np.dtype(self.dtype).itemsize
        for dim in self.shape:
            n *= dim
        return n


@dataclass(frozen=True)
class SharedColumns:
    """A picklable handle to columns published in one shared segment.

    Plain data (segment name + per-column layout + content digest):
    crossing a process boundary costs a few hundred bytes no matter how
    large the columns are.
    """

    segment: str
    specs: Tuple[ColumnSpec, ...]
    #: blake2b digest of the published content; pre-seeds the route-cache
    #: digest of attached batches so consumers never rehash the columns.
    digest: bytes

    @property
    def nbytes(self) -> int:
        """Total payload bytes in the segment."""
        return sum(spec.nbytes for spec in self.specs)


# Publisher side: segments this process created and must unlink.
_OWNED: Dict[str, shared_memory.SharedMemory] = {}
# Consumer side: segments this process has mapped, keyed by name. The
# SharedMemory object must stay referenced as long as views into its
# buffer exist, so the cache holds both.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, Dict[str, np.ndarray]]] = {}


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without claiming ownership of it."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        # Attaching registers the segment with the resource tracker on
        # these versions; suppress the registration rather than undo it,
        # because unregistering drops the *owner's* entry too (the
        # tracker cache is one set shared over the inherited pipe) and
        # the owner's later unlink would then log a KeyError.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


def share_arrays(arrays: Mapping[str, np.ndarray]) -> SharedColumns:
    """Publish named arrays into one new shared-memory segment.

    Returns the handle to send to consumers. The calling process owns
    the segment; call :func:`release` (or :func:`release_all_shared`)
    when no consumer needs it any more.
    """
    if not arrays:
        raise ReproError("share_arrays: nothing to share")
    specs = []
    offset = 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        specs.append(
            ColumnSpec(
                name=name, dtype=arr.dtype.str, shape=arr.shape, offset=offset
            )
        )
        offset += arr.nbytes
    # A zero-byte segment is not portable; share at least one byte.
    shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
    digest = hashlib.blake2b(digest_size=16)
    for spec, arr in zip(specs, arrays.values()):
        dst = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
        )
        dst[...] = arr
        digest.update(dst.tobytes())
    _OWNED[shm.name] = shm
    return SharedColumns(
        segment=shm.name, specs=tuple(specs), digest=digest.digest()
    )


def attach_arrays(handle: SharedColumns) -> Dict[str, np.ndarray]:
    """Map the columns of *handle* as read-only arrays (memoised).

    The arrays are views into the shared pages — zero copies, and
    writes are forbidden so concurrent consumers cannot race.
    """
    cached = _ATTACHED.get(handle.segment)
    if cached is not None:
        return cached[1]
    owned = _OWNED.get(handle.segment)
    shm = owned if owned is not None else _attach_segment(handle.segment)
    views: Dict[str, np.ndarray] = {}
    for spec in handle.specs:
        view = np.ndarray(
            spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
        )
        view.flags.writeable = False
        views[spec.name] = view
    _ATTACHED[handle.segment] = (shm, views)
    return views


def share_halo_batch(batch: HaloBatch) -> SharedColumns:
    """Publish a halo batch's columns; the handle carries its digest."""
    handle = share_arrays(
        {"src": batch.src, "dst": batch.dst, "nbytes": batch.nbytes}
    )
    # The column-wise blake2b above hashes src|dst|nbytes in order —
    # exactly HaloBatch.digest(); assert the contract instead of trusting
    # the duplication silently.
    assert handle.digest == batch.digest()
    return handle


def attach_halo_batch(handle: SharedColumns) -> HaloBatch:
    """The batch published by :func:`share_halo_batch`, zero-copy.

    The returned batch's route-cache digest is pre-seeded from the
    handle, so routing it hits the same cache entries as the original
    without rehashing tens of megabytes of columns.
    """
    views = attach_arrays(handle)
    try:
        batch = HaloBatch(
            src=views["src"], dst=views["dst"], nbytes=views["nbytes"]
        )
    except KeyError:
        raise ReproError(
            f"segment {handle.segment!r} does not hold halo columns "
            f"(has {[s.name for s in handle.specs]})"
        ) from None
    object.__setattr__(batch, "_digest", handle.digest)
    return batch


def release(handle: SharedColumns) -> None:
    """Detach *handle*'s segment; the publisher additionally unlinks it."""
    attached = _ATTACHED.pop(handle.segment, None)
    owned = _OWNED.pop(handle.segment, None)
    shm = owned if owned is not None else (attached[0] if attached else None)
    if shm is None:
        return
    shm.close()
    if owned is not None:
        owned.unlink()


def release_all_shared() -> None:
    """Release every segment this process published or attached."""
    for name in list(_ATTACHED):
        shm, _ = _ATTACHED.pop(name)
        if name not in _OWNED:
            shm.close()
    for name in list(_OWNED):
        shm = _OWNED.pop(name)
        shm.close()
        shm.unlink()


def shm_stats() -> Dict[str, int]:
    """Segment counts of this process (tests, leak diagnostics)."""
    return {"owned": len(_OWNED), "attached": len(_ATTACHED)}


# Workers exit through interpreter shutdown, not through release calls;
# close the mappings then so the resource layer never warns about leaked
# file descriptors. (Publisher-side unlink still happens here too, as a
# last resort for publishers that forgot release().)
atexit.register(release_all_shared)
