"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by library code derive from :class:`ReproError` so a
caller can catch everything coming from this package with a single handler
while still distinguishing programmer errors (``TypeError``/``ValueError``
raised eagerly during argument validation) from domain failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "PredictionError",
    "AllocationError",
    "MappingError",
    "SimulationError",
    "SweepError",
    "TopologyError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An invalid domain / machine / run configuration was supplied."""


class GeometryError(ReproError):
    """A geometric operation failed (degenerate triangle, empty rectangle...)."""


class PredictionError(ReproError):
    """The performance-prediction model could not produce an estimate."""


class AllocationError(ReproError):
    """Processor allocation failed (e.g. more siblings than processors)."""


class MappingError(ReproError):
    """A process-to-torus mapping is infeasible or invalid."""


class TopologyError(ReproError):
    """A torus/machine topology was invalid for the requested operation."""


class SimulationError(ReproError):
    """The performance or numerical simulation entered an invalid state."""


class SweepError(ReproError):
    """A parallel sweep could not complete (e.g. repeated worker death)."""
