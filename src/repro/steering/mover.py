"""Nest relocation: recentre footprints over tracked features."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.steering.tracker import TrackedFeature
from repro.wrf.grid import DomainSpec

__all__ = ["move_nest_over", "plan_moves", "NestMove"]


@dataclass(frozen=True)
class NestMove:
    """A planned relocation of one nest."""

    name: str
    old_start: Tuple[int, int]
    new_start: Tuple[int, int]

    @property
    def displacement(self) -> Tuple[int, int]:
        """``(dx, dy)`` in parent cells."""
        return (
            self.new_start[0] - self.old_start[0],
            self.new_start[1] - self.old_start[1],
        )

    @property
    def moved(self) -> bool:
        """Whether the nest actually changes position."""
        return self.new_start != self.old_start


def move_nest_over(
    nest: DomainSpec, parent: DomainSpec, feature: TrackedFeature
) -> DomainSpec:
    """A copy of *nest* recentred on *feature*, clamped to the parent."""
    if not nest.is_nest:
        raise ConfigurationError(f"{nest.name!r} is not a nest")
    w, h = nest.parent_extent()
    i0 = max(0, min(parent.nx - w, feature.x - w // 2))
    j0 = max(0, min(parent.ny - h, feature.y - h // 2))
    return DomainSpec(
        name=nest.name,
        nx=nest.nx,
        ny=nest.ny,
        dx_km=nest.dx_km,
        parent=nest.parent,
        parent_start=(i0, j0),
        refinement=nest.refinement,
        level=nest.level,
    )


def _overlap(a: DomainSpec, b: DomainSpec) -> bool:
    ai, aj = a.parent_start  # type: ignore[misc]
    aw, ah = a.parent_extent()
    bi, bj = b.parent_start  # type: ignore[misc]
    bw, bh = b.parent_extent()
    return not (ai + aw <= bi or bi + bw <= ai or aj + ah <= bj or bj + bh <= aj)


def plan_moves(
    nests: Sequence[DomainSpec],
    parent: DomainSpec,
    features: Sequence[TrackedFeature],
) -> Tuple[List[DomainSpec], List[NestMove]]:
    """Assign each nest to its nearest feature and plan the relocations.

    Assignment is greedy by distance (strongest feature first claims its
    nearest free nest). A relocation that would overlap an already-placed
    sibling is cancelled (the nest stays put) — sibling footprints must
    stay disjoint for concurrent execution to remain legal.

    Returns the (possibly moved) nest specs in the original order plus
    the per-nest move records.
    """
    remaining = {n.name for n in nests}
    by_name: Dict[str, DomainSpec] = {n.name: n for n in nests}
    target: Dict[str, TrackedFeature] = {}

    for feature in features:
        if not remaining:
            break
        nearest = min(
            remaining,
            key=lambda name: (
                (by_name[name].parent_start[0] - feature.x) ** 2
                + (by_name[name].parent_start[1] - feature.y) ** 2
            ),
        )
        target[nearest] = feature
        remaining.discard(nearest)

    placed: List[DomainSpec] = []
    moves: List[NestMove] = []
    for nest in nests:
        assert nest.parent_start is not None
        if nest.name in target:
            moved = move_nest_over(nest, parent, target[nest.name])
            if any(_overlap(moved, other) for other in placed):
                moved = nest  # cancelled: would collide with a sibling
        else:
            moved = nest
        placed.append(moved)
        assert moved.parent_start is not None
        moves.append(
            NestMove(
                name=nest.name,
                old_start=nest.parent_start,
                new_start=moved.parent_start,
            )
        )
    return placed, moves
