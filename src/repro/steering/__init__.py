"""Simulation steering: tracking features and moving nests (future work).

The paper closes with "we also plan to simultaneously steer these
multiple nested simulations". This package implements that extension on
top of the existing machinery:

* :mod:`~repro.steering.tracker` — find the depressions (local height
  minima) in the parent state, the job of an operational vortex tracker.
* :mod:`~repro.steering.mover` — recentre a nest's footprint over a
  tracked feature, respecting parent bounds and sibling disjointness.
* :mod:`~repro.steering.driver` — :class:`SteeredRun`: advance the
  nested model, re-track every ``retrack_interval`` iterations, move
  nests (re-spawning their state by parent interpolation), and replan
  the processor allocation when the configuration changed.
"""

from repro.steering.tracker import TrackedFeature, find_depressions
from repro.steering.mover import move_nest_over, plan_moves
from repro.steering.driver import SteeredRun, SteeringEvent

__all__ = [
    "TrackedFeature",
    "find_depressions",
    "move_nest_over",
    "plan_moves",
    "SteeredRun",
    "SteeringEvent",
]
