"""Feature tracking: locate depressions in the parent state.

An operational nested forecast keeps its fine nests centred over the
weather systems they track. This module finds the systems: local minima
of the fluid depth (low pressure), deep enough below the reference level
and separated by a minimum distance — the essentials of a vortex
tracker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import check_positive_float, check_positive_int
from repro.wrf.fields import ModelState

__all__ = ["TrackedFeature", "find_depressions"]


@dataclass(frozen=True)
class TrackedFeature:
    """One tracked depression."""

    #: Centre in parent grid coordinates (x = fast axis).
    x: int
    y: int
    #: Central depth (lower = stronger system).
    depth: float
    #: Depth deficit relative to the domain median (positive = depression).
    intensity: float


def find_depressions(
    state: ModelState,
    *,
    max_count: int = 4,
    min_separation: int = 12,
    min_intensity: float = 0.05,
) -> List[TrackedFeature]:
    """Locate up to *max_count* depressions in *state*.

    Candidates are strict local minima of the depth field (4-neighbour
    stencil) at least *min_intensity* below the median depth; the
    strongest are kept greedily subject to a *min_separation* Chebyshev
    distance, mirroring how multiple depressions are distinguished in
    Fig 1 of the paper.
    """
    check_positive_int(max_count, "max_count")
    check_positive_int(min_separation, "min_separation")
    check_positive_float(min_intensity, "min_intensity", allow_zero=True)

    h = state.h
    ny, nx = h.shape
    if nx < 3 or ny < 3:
        raise ConfigurationError("domain too small to track features")
    median = float(np.median(h))

    interior = h[1:-1, 1:-1]
    is_min = (
        (interior < h[1:-1, :-2])
        & (interior < h[1:-1, 2:])
        & (interior < h[:-2, 1:-1])
        & (interior < h[2:, 1:-1])
        & (interior < median - min_intensity)
    )
    ys, xs = np.nonzero(is_min)
    candidates = sorted(
        (
            TrackedFeature(
                x=int(x) + 1,
                y=int(y) + 1,
                depth=float(interior[y, x]),
                intensity=median - float(interior[y, x]),
            )
            for y, x in zip(ys, xs)
        ),
        key=lambda f: f.depth,
    )

    kept: List[TrackedFeature] = []
    for cand in candidates:
        if len(kept) >= max_count:
            break
        if all(
            max(abs(cand.x - k.x), abs(cand.y - k.y)) >= min_separation
            for k in kept
        ):
            kept.append(cand)
    return kept
