"""The steered-run driver: integrate, track, move, replan.

:class:`SteeredRun` couples the numerical model with the scheduler:

* every iteration the nested model advances as usual,
* every ``retrack_interval`` iterations the tracker relocates the
  depressions; nests whose feature drifted are *moved* — their fine
  state re-spawned by parent interpolation at the new position (what an
  operational moving-nest WRF does),
* whenever any nest moved, the processor allocation is *replanned* so
  the simulated cost model keeps pricing the current configuration.

Replanning goes through the memoized plan cache
(:func:`repro.exec.plancache.parallel_plan`) — a steered run revisits
the same handful of nest configurations as features jitter back and
forth, and an ensemble of steered runs revisits each other's — and,
when a *machine* is supplied, the placement cache
(:func:`repro.exec.placementcache.cached_placement`), keeping a warm
:class:`~repro.core.mapping.base.Placement` on :attr:`SteeredRun.placement`
for whoever prices the plan next. The ``steering.replan.*`` counters
record the hit/miss split and reconcile exactly with
:func:`~repro.exec.plancache.plan_cache_stats`.

A run is **checkpointable**: :meth:`SteeredRun.checkpoint` captures the
full member state (parent field, every nest's spec *and* fine state,
iteration counter, steering history) as a picklable value and
:meth:`SteeredRun.restore` resumes it bit-exactly — the primitive the
ensemble layer builds ``branch``/migration on.

This realises the paper's closing future-work item ("simultaneously
steer these multiple nested simulations") within the reproduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.mapping.base import Mapping, Placement, SlotSpace
from repro.core.mapping.oblivious import ObliviousMapping
from repro.core.scheduler.plan import ExecutionPlan
from repro.core.scheduler.strategies import Predictor
from repro.errors import ConfigurationError
from repro.exec.placementcache import cached_placement, placement_cache_stats
from repro.exec.plancache import parallel_plan, plan_cache_stats
from repro.obs.metrics import counter as _obs_counter
from repro.obs.trace import tracer
from repro.runtime.process_grid import ProcessGrid
from repro.steering.mover import NestMove, plan_moves
from repro.steering.tracker import TrackedFeature, find_depressions
from repro.topology.machines import Machine
from repro.wrf.fields import ModelState
from repro.wrf.grid import DomainSpec
from repro.wrf.model import NestedModel
from repro.wrf.nest import Nest
from repro.wrf.physics import PhysicsParams
from repro.wrf.solver import SolverParams

__all__ = ["SteeringEvent", "SteeredCheckpoint", "SteeredRun"]

# Observability: steering decisions per run. Bound once at import;
# registry resets zero them in place.
_STEER_CALLS = _obs_counter("steering.steer_calls")
_STEER_MOVES = _obs_counter("steering.nest_moves")
_STEER_REPLANS = _obs_counter("steering.replans")
# Replan cache traffic: classified by diffing the cache's own counters
# around each lookup, so these reconcile exactly with plan_cache_stats()
# / placement_cache_stats() when the run is the only cache client.
_REPLAN_PLAN_HITS = _obs_counter("steering.replan.cache_hit")
_REPLAN_PLAN_MISSES = _obs_counter("steering.replan.cache_miss")
_REPLAN_PLACE_HITS = _obs_counter("steering.replan.placement_cache_hit")
_REPLAN_PLACE_MISSES = _obs_counter("steering.replan.placement_cache_miss")


@dataclass(frozen=True)
class SteeringEvent:
    """Record of one steering decision.

    The wall fields split where real time went (tracking + move planning
    vs replanning); ``steer_model_s`` is the *modeled* cost of the pass
    in simulated seconds — respawned fine points times the run's
    ``respawn_cost_s_per_point``, zero by default — the number the
    ``steer`` trace phase carries so profile reports can attribute
    steering overhead alongside the parent/nest/io phases.
    """

    iteration: int
    features: tuple[TrackedFeature, ...]
    moves: tuple[NestMove, ...]
    replanned: bool
    track_wall_ns: int = 0
    replan_wall_ns: int = 0
    steer_model_s: float = 0.0

    @property
    def num_moved(self) -> int:
        """Number of nests that changed position."""
        return sum(1 for m in self.moves if m.moved)

    @property
    def steer_wall_ns(self) -> int:
        """Total wall time of the steering pass."""
        return self.track_wall_ns + self.replan_wall_ns


@dataclass(frozen=True)
class SteeredCheckpoint:
    """Complete, picklable state of a :class:`SteeredRun` member.

    Restoring continues the integration bit-exactly: the parent field,
    every nest's footprint and fine state, the iteration counter, and
    the steering history are all captured by value.
    """

    iteration: int
    parent_spec: DomainSpec
    state: ModelState
    nests: Tuple[Tuple[DomainSpec, ModelState], ...]
    events: Tuple[SteeringEvent, ...]
    solver_params: SolverParams
    physics: Optional[PhysicsParams]
    two_way: bool


class SteeredRun:
    """A nested run with feature tracking, nest motion, and replanning.

    Parameters
    ----------
    model:
        The running :class:`~repro.wrf.model.NestedModel`.
    grid:
        Processor grid used for replanning (cost-model side).
    predictor:
        Performance model driving the re-allocation; when ``None`` the
        point counts are used as ratios.
    retrack_interval:
        Iterations between tracker invocations.
    machine / mapping / mode:
        When *machine* is given, every replan also derives the plan's
        placement through the placement cache (mapping defaults to the
        Blue Gene XYZT order, mode to the machine default) and keeps it
        on :attr:`placement` for pricing.
    respawn_cost_s_per_point:
        Modeled cost, in simulated seconds per respawned fine point, a
        nest move charges to the ``steer`` phase. The default ``0.0``
        keeps steering free in model time (the historical behaviour).
    """

    def __init__(
        self,
        model: NestedModel,
        grid: ProcessGrid,
        *,
        predictor: Optional[Predictor] = None,
        retrack_interval: int = 5,
        min_move_cells: int = 2,
        machine: Optional[Machine] = None,
        mapping: Optional[Mapping] = None,
        mode: Optional[str] = None,
        respawn_cost_s_per_point: float = 0.0,
    ):
        if retrack_interval < 1:
            raise ConfigurationError("retrack_interval must be >= 1")
        if respawn_cost_s_per_point < 0:
            raise ConfigurationError(
                "respawn_cost_s_per_point must be >= 0, "
                f"got {respawn_cost_s_per_point}"
            )
        self.model = model
        self.grid = grid
        self.predictor = predictor
        self.retrack_interval = retrack_interval
        self.min_move_cells = min_move_cells
        self.machine = machine
        self.mapping = mapping
        self.mode = mode
        self.respawn_cost_s_per_point = respawn_cost_s_per_point
        self.placement: Optional[Placement] = None
        self._placement_rects: Optional[Tuple] = None
        self.events: List[SteeringEvent] = []
        self.plan: ExecutionPlan = self._replan()

    # ------------------------------------------------------------------
    def _current_specs(self) -> List[DomainSpec]:
        return [self.model.nests[name].spec for name in self.model.sibling_names]

    def _replan(self) -> ExecutionPlan:
        specs = self._current_specs()
        if self.predictor is not None:
            ratios = [float(r) for r in self.predictor.predict_ratios(specs)]
        else:
            ratios = [float(s.points) for s in specs]
        before = plan_cache_stats().hits
        plan = parallel_plan(self.grid, self.model.parent_spec, specs, ratios)
        if plan_cache_stats().hits > before:
            _REPLAN_PLAN_HITS.inc()
        else:
            _REPLAN_PLAN_MISSES.inc()
        if self.machine is not None:
            rects = tuple(plan.rects) if plan.concurrent else None
            # A nest move changes footprint *positions*, not sizes, so
            # the replanned rects — and therefore the placement — are
            # usually identical to the current ones. Skip the cache
            # round-trip entirely then: at ensemble scale the hit path
            # (key hashing over 100k+ ranks) is itself the hot loop.
            if self.placement is None or rects != self._placement_rects:
                space = SlotSpace(
                    self.machine.torus_for_ranks(self.grid.size, self.mode),
                    self.machine.mode(self.mode).ranks_per_node,
                )
                mapping = self.mapping or ObliviousMapping()
                place_before = placement_cache_stats().hits
                self.placement = cached_placement(
                    mapping, self.grid, space, rects
                )
                if placement_cache_stats().hits > place_before:
                    _REPLAN_PLACE_HITS.inc()
                else:
                    _REPLAN_PLACE_MISSES.inc()
                self._placement_rects = rects
        return plan

    # ------------------------------------------------------------------
    def _apply_moves(
        self, moved_specs: Sequence[DomainSpec]
    ) -> Tuple[int, int]:
        """Re-bind nests whose footprints changed.

        Returns ``(nests moved, fine points respawned)`` — the latter
        drives the modeled steering cost.
        """
        changed = 0
        respawned_points = 0
        for spec in moved_specs:
            old = self.model.nests[spec.name]
            dx = abs(spec.parent_start[0] - old.spec.parent_start[0])  # type: ignore[index]
            dy = abs(spec.parent_start[1] - old.spec.parent_start[1])  # type: ignore[index]
            if max(dx, dy) < self.min_move_cells:
                continue
            nest = Nest(
                spec,
                self.model.parent_spec,
                solver_params=self.model.params,
                physics=self.model.physics,
            )
            nest.spawn(self.model.state)
            self.model.nests[spec.name] = nest
            changed += 1
            respawned_points += spec.points
        return changed, respawned_points

    def steer(self) -> SteeringEvent:
        """Run one tracking/moving/replanning pass right now."""
        tr = tracer()
        t0 = time.perf_counter_ns()
        with tr.span(
            "steering.steer",
            {"iteration": self.model.iteration} if tr.enabled else None,
        ):
            features = find_depressions(
                self.model.state, max_count=len(self.model.sibling_names)
            )
            specs = self._current_specs()
            moved_specs, moves = plan_moves(specs, self.model.parent_spec, features)
            changed, respawned_points = self._apply_moves(moved_specs)
            t_tracked = time.perf_counter_ns()
            replanned = changed > 0
            if replanned:
                self.plan = self._replan()
            t_replanned = time.perf_counter_ns()
            steer_model_s = self.respawn_cost_s_per_point * respawned_points
            if tr.enabled:
                tr.phase(
                    "steer",
                    steer_model_s,
                    {
                        "iteration": self.model.iteration,
                        "moved": changed,
                        "replanned": replanned,
                        "replan_wall_ns": t_replanned - t_tracked,
                    },
                )
        _STEER_CALLS.inc()
        _STEER_MOVES.inc(changed)
        _STEER_REPLANS.inc(1 if replanned else 0)
        event = SteeringEvent(
            iteration=self.model.iteration,
            features=tuple(features),
            moves=tuple(moves),
            replanned=replanned,
            track_wall_ns=t_tracked - t0,
            replan_wall_ns=t_replanned - t_tracked,
            steer_model_s=steer_model_s,
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def checkpoint(self) -> SteeredCheckpoint:
        """Capture the full run state as a picklable value."""
        model = self.model
        nests = []
        for name in model.sibling_names:
            nest = model.nests[name]
            if nest.state is None:  # pragma: no cover - spawn() at init
                raise ConfigurationError(f"nest {name!r} has no state yet")
            nests.append((nest.spec, nest.state.copy()))
        return SteeredCheckpoint(
            iteration=model.iteration,
            parent_spec=model.parent_spec,
            state=model.state.copy(),
            nests=tuple(nests),
            events=tuple(self.events),
            solver_params=model.params,
            physics=model.physics,
            two_way=model.two_way,
        )

    @classmethod
    def restore(
        cls,
        checkpoint: SteeredCheckpoint,
        grid: ProcessGrid,
        *,
        predictor: Optional[Predictor] = None,
        retrack_interval: int = 5,
        min_move_cells: int = 2,
        machine: Optional[Machine] = None,
        mapping: Optional[Mapping] = None,
        mode: Optional[str] = None,
        respawn_cost_s_per_point: float = 0.0,
    ) -> "SteeredRun":
        """Resume a checkpointed run; continuation is bit-exact."""
        model = NestedModel(
            checkpoint.parent_spec,
            [spec for spec, _ in checkpoint.nests],
            initial_state=checkpoint.state,
            solver_params=checkpoint.solver_params,
            physics=checkpoint.physics,
            two_way=checkpoint.two_way,
        )
        # __init__ spawned each nest by interpolation; overwrite with the
        # checkpointed fine states (they have integrated past spawn).
        for spec, state in checkpoint.nests:
            model.nests[spec.name].state = state.copy()
        model.iteration = checkpoint.iteration
        run = cls(
            model,
            grid,
            predictor=predictor,
            retrack_interval=retrack_interval,
            min_move_cells=min_move_cells,
            machine=machine,
            mapping=mapping,
            mode=mode,
            respawn_cost_s_per_point=respawn_cost_s_per_point,
        )
        run.events = list(checkpoint.events)
        return run

    # ------------------------------------------------------------------
    def run(self, num_iterations: int, dt: Optional[float] = None) -> None:
        """Advance the model, steering every ``retrack_interval`` steps."""
        if num_iterations < 0:
            raise ConfigurationError("num_iterations must be >= 0")
        for _ in range(num_iterations):
            self.model.advance(dt)
            if self.model.iteration % self.retrack_interval == 0:
                self.steer()
