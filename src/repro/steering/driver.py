"""The steered-run driver: integrate, track, move, replan.

:class:`SteeredRun` couples the numerical model with the scheduler:

* every iteration the nested model advances as usual,
* every ``retrack_interval`` iterations the tracker relocates the
  depressions; nests whose feature drifted are *moved* — their fine
  state re-spawned by parent interpolation at the new position (what an
  operational moving-nest WRF does),
* whenever any nest moved, the processor allocation is *replanned* so
  the simulated cost model keeps pricing the current configuration.

This realises the paper's closing future-work item ("simultaneously
steer these multiple nested simulations") within the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.scheduler.plan import ExecutionPlan
from repro.core.scheduler.strategies import ParallelSiblingsStrategy, Predictor
from repro.errors import ConfigurationError
from repro.obs.metrics import counter as _obs_counter
from repro.obs.trace import tracer
from repro.runtime.process_grid import ProcessGrid
from repro.steering.mover import NestMove, plan_moves
from repro.steering.tracker import TrackedFeature, find_depressions
from repro.wrf.grid import DomainSpec
from repro.wrf.model import NestedModel
from repro.wrf.nest import Nest

__all__ = ["SteeringEvent", "SteeredRun"]

# Observability: steering decisions per run. Bound once at import;
# registry resets zero them in place.
_STEER_CALLS = _obs_counter("steering.steer_calls")
_STEER_MOVES = _obs_counter("steering.nest_moves")
_STEER_REPLANS = _obs_counter("steering.replans")


@dataclass(frozen=True)
class SteeringEvent:
    """Record of one steering decision."""

    iteration: int
    features: tuple[TrackedFeature, ...]
    moves: tuple[NestMove, ...]
    replanned: bool

    @property
    def num_moved(self) -> int:
        """Number of nests that changed position."""
        return sum(1 for m in self.moves if m.moved)


class SteeredRun:
    """A nested run with feature tracking, nest motion, and replanning.

    Parameters
    ----------
    model:
        The running :class:`~repro.wrf.model.NestedModel`.
    grid:
        Processor grid used for replanning (cost-model side).
    predictor:
        Performance model driving the re-allocation; when ``None`` the
        point counts are used as ratios.
    retrack_interval:
        Iterations between tracker invocations.
    """

    def __init__(
        self,
        model: NestedModel,
        grid: ProcessGrid,
        *,
        predictor: Optional[Predictor] = None,
        retrack_interval: int = 5,
        min_move_cells: int = 2,
    ):
        if retrack_interval < 1:
            raise ConfigurationError("retrack_interval must be >= 1")
        self.model = model
        self.grid = grid
        self.predictor = predictor
        self.retrack_interval = retrack_interval
        self.min_move_cells = min_move_cells
        self.events: List[SteeringEvent] = []
        self.plan: ExecutionPlan = self._replan()

    # ------------------------------------------------------------------
    def _current_specs(self) -> List[DomainSpec]:
        return [self.model.nests[name].spec for name in self.model.sibling_names]

    def _replan(self) -> ExecutionPlan:
        specs = self._current_specs()
        if self.predictor is not None:
            return ParallelSiblingsStrategy(self.predictor).plan(
                self.grid, self.model.parent_spec, specs
            )
        return ParallelSiblingsStrategy().plan(
            self.grid,
            self.model.parent_spec,
            specs,
            ratios=[s.points for s in specs],
        )

    # ------------------------------------------------------------------
    def _apply_moves(self, moved_specs: Sequence[DomainSpec]) -> int:
        """Re-bind nests whose footprints changed; returns the count."""
        changed = 0
        for spec in moved_specs:
            old = self.model.nests[spec.name]
            dx = abs(spec.parent_start[0] - old.spec.parent_start[0])  # type: ignore[index]
            dy = abs(spec.parent_start[1] - old.spec.parent_start[1])  # type: ignore[index]
            if max(dx, dy) < self.min_move_cells:
                continue
            nest = Nest(
                spec,
                self.model.parent_spec,
                solver_params=self.model.params,
                physics=self.model.physics,
            )
            nest.spawn(self.model.state)
            self.model.nests[spec.name] = nest
            changed += 1
        return changed

    def steer(self) -> SteeringEvent:
        """Run one tracking/moving/replanning pass right now."""
        tr = tracer()
        with tr.span(
            "steering.steer",
            {"iteration": self.model.iteration} if tr.enabled else None,
        ):
            features = find_depressions(
                self.model.state, max_count=len(self.model.sibling_names)
            )
            specs = self._current_specs()
            moved_specs, moves = plan_moves(specs, self.model.parent_spec, features)
            changed = self._apply_moves(moved_specs)
            replanned = changed > 0
            if replanned:
                self.plan = self._replan()
        _STEER_CALLS.inc()
        _STEER_MOVES.inc(changed)
        _STEER_REPLANS.inc(1 if replanned else 0)
        event = SteeringEvent(
            iteration=self.model.iteration,
            features=tuple(features),
            moves=tuple(moves),
            replanned=replanned,
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def run(self, num_iterations: int, dt: Optional[float] = None) -> None:
        """Advance the model, steering every ``retrack_interval`` steps."""
        if num_iterations < 0:
            raise ConfigurationError("num_iterations must be >= 0")
        for _ in range(num_iterations):
            self.model.advance(dt)
            if self.model.iteration % self.retrack_interval == 0:
                self.steer()
