"""Profile reports over trace records.

Two aggregations over one trace stream:

* **Wall time** — spans grouped by name into count/total/self/min/max
  (self time = a span's duration minus its direct children's), the
  classic flat profile of where real time went.
* **Model time** — ``phase`` records grouped by their enclosing
  ``perfsim.simulate_iteration`` span into an :class:`IterationProfile`:
  parent step, per-sibling nest phase, feedback sync, and history I/O in
  *simulated* seconds — the paper's Table 1/2 phase columns, recomputed
  from the trace rather than read off the report object, so tests can
  prove tracing measures exactly what the simulator returned.

The same records also export as a Chrome ``chrome://tracing`` /
Perfetto trace-event file (:func:`chrome_trace`): wall spans on pid 0
(one row per thread), instant events as ``i`` marks, and each
iteration's model-time phases laid out sequentially on pid 1 as a
synthetic simulated-time track.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "WallAggregate",
    "IterationProfile",
    "ProfileReport",
    "aggregate_wall",
    "phase_breakdown",
    "build_report",
    "reconcile",
    "chrome_trace",
    "write_chrome_trace",
]

#: Span name the perfsim instrumentation wraps one iteration in.
ITERATION_SPAN = "perfsim.simulate_iteration"


# ------------------------------------------------------------ wall profile
@dataclass(frozen=True)
class WallAggregate:
    """Flat wall-clock profile of one span name."""

    name: str
    count: int
    total_ns: int
    self_ns: int
    min_ns: int
    max_ns: int


def aggregate_wall(records: Iterable[Mapping[str, Any]]) -> Tuple[WallAggregate, ...]:
    """Per-name wall aggregates, heaviest total first."""
    spans = [r for r in records if r.get("type") == "span"]
    child_ns: Dict[int, int] = defaultdict(int)
    for r in spans:
        child_ns[r["parent"]] += r["dur"]
    stats: Dict[str, List[int]] = {}
    for r in spans:
        dur = r["dur"]
        self_ns = dur - child_ns.get(r["id"], 0)
        s = stats.get(r["name"])
        if s is None:
            stats[r["name"]] = [1, dur, self_ns, dur, dur]
        else:
            s[0] += 1
            s[1] += dur
            s[2] += self_ns
            s[3] = min(s[3], dur)
            s[4] = max(s[4], dur)
    return tuple(
        sorted(
            (
                WallAggregate(name, c, total, self_ns, mn, mx)
                for name, (c, total, self_ns, mn, mx) in stats.items()
            ),
            key=lambda a: -a.total_ns,
        )
    )


# ----------------------------------------------------------- model profile
@dataclass(frozen=True)
class IterationProfile:
    """Model-time phase breakdown of one simulated iteration.

    All times are simulated seconds recomputed from the trace's phase
    records; ``nest_phase_time``/``integration_time``/``mpi_wait`` apply
    the same aggregation rules as the simulator (sum vs max under the
    sequential vs parallel strategy, rank-share-weighted waits).
    """

    span_id: int
    strategy: str
    machine: str
    ranks: int
    concurrent: bool
    parent_time: float
    parent_wait: float
    nests: Tuple[Tuple[str, float], ...]
    #: Per-sibling contribution to the average per-rank nest wait.
    nest_wait_contribs: Tuple[float, ...]
    #: Per-sibling contribution to the average per-rank sync wait.
    sync_wait_contribs: Tuple[float, ...]
    io_time: float
    #: Modeled steering overhead (nest respawns) attributed to this
    #: group; zero for plain simulate_iteration traces.
    steer_time: float = 0.0

    @property
    def nest_phase_time(self) -> float:
        times = [t for _, t in self.nests]
        if self.concurrent:
            return max(times, default=0.0)
        return sum(times)

    @property
    def integration_time(self) -> float:
        return self.parent_time + self.nest_phase_time

    @property
    def total_time(self) -> float:
        return self.integration_time + self.io_time + self.steer_time

    @property
    def nest_wait(self) -> float:
        return sum(self.nest_wait_contribs)

    @property
    def sync_wait(self) -> float:
        return sum(self.sync_wait_contribs)

    @property
    def mpi_wait(self) -> float:
        return self.parent_wait + self.nest_wait + self.sync_wait


def phase_breakdown(
    records: Iterable[Mapping[str, Any]],
) -> Tuple[IterationProfile, ...]:
    """Group phase records by iteration span, in emission order."""
    groups: "Dict[int, List[Mapping[str, Any]]]" = {}
    order: List[int] = []
    for r in records:
        if r.get("type") != "phase":
            continue
        parent = r["parent"]
        if parent not in groups:
            groups[parent] = []
            order.append(parent)
        groups[parent].append(r)

    profiles: List[IterationProfile] = []
    for span_id in order:
        parent_time = parent_wait = io_time = steer_time = 0.0
        nests: List[Tuple[str, float]] = []
        nest_contribs: List[float] = []
        sync_contribs: List[float] = []
        meta: Dict[str, Any] = {}
        for r in groups[span_id]:
            attrs = r.get("attrs", {})
            if not meta and attrs:
                meta = attrs
            kind = r["phase"]
            if kind == "parent":
                parent_time = r["model_time"]
                parent_wait = attrs.get("wait", 0.0)
            elif kind == "nest":
                nests.append((attrs.get("sibling", "?"), r["model_time"]))
                nest_contribs.append(attrs.get("wait_contrib", 0.0))
                sync_contribs.append(attrs.get("sync_contrib", 0.0))
            elif kind == "io":
                io_time = r["model_time"]
            elif kind == "steer":
                # A group may steer more than once (e.g. one member
                # span covering several retrack passes): accumulate.
                steer_time += r["model_time"]
        profiles.append(
            IterationProfile(
                span_id=span_id,
                strategy=str(meta.get("strategy", "?")),
                machine=str(meta.get("machine", "?")),
                ranks=int(meta.get("ranks", 0)),
                concurrent=bool(meta.get("concurrent", False)),
                parent_time=parent_time,
                parent_wait=parent_wait,
                nests=tuple(nests),
                nest_wait_contribs=tuple(nest_contribs),
                sync_wait_contribs=tuple(sync_contribs),
                io_time=io_time,
                steer_time=steer_time,
            )
        )
    return tuple(profiles)


def reconcile(
    records: Iterable[Mapping[str, Any]],
    reports: Sequence[Any],
    *,
    abs_tol: float = 1e-9,
) -> List[str]:
    """Check trace-derived phase totals against ``IterationReport``s.

    Pairs the trace's iteration profiles with *reports* in order and
    returns every discrepancy beyond *abs_tol* (empty list: the trace
    measures exactly what the simulator returned).
    """
    profiles = phase_breakdown(records)
    problems: List[str] = []
    if len(profiles) != len(reports):
        problems.append(
            f"trace holds {len(profiles)} iteration profiles, "
            f"expected {len(reports)}"
        )
    for i, (profile, report) in enumerate(zip(profiles, reports)):
        checks = [
            ("parent", profile.parent_time, report.parent.total),
            ("nest_phase", profile.nest_phase_time, report.nest_phase_time),
            ("integration", profile.integration_time, report.integration_time),
            ("io", profile.io_time, report.io_time),
            # Reports without a steering notion (IterationReport) imply
            # zero steer overhead; ensemble member records carry theirs.
            ("steer", profile.steer_time, getattr(report, "steer_time", 0.0)),
            ("total", profile.total_time,
             report.total_time + getattr(report, "steer_time", 0.0)),
            ("mpi_wait", profile.mpi_wait, report.mpi_wait),
        ]
        if profile.strategy != report.strategy:
            problems.append(
                f"iteration {i}: strategy {profile.strategy!r} "
                f"!= report {report.strategy!r}"
            )
        for label, traced, simulated in checks:
            if abs(traced - simulated) > abs_tol:
                problems.append(
                    f"iteration {i} [{profile.strategy}] {label}: "
                    f"traced {traced!r} vs report {simulated!r}"
                )
    return problems


# ---------------------------------------------------------------- report
@dataclass(frozen=True)
class ProfileReport:
    """Wall + model profile of one traced run, with a metrics snapshot."""

    wall: Tuple[WallAggregate, ...]
    iterations: Tuple[IterationProfile, ...]
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """Canonical JSON-able form of the report."""
        return {
            "wall": [
                {
                    "name": w.name,
                    "count": w.count,
                    "total_ns": w.total_ns,
                    "self_ns": w.self_ns,
                    "min_ns": w.min_ns,
                    "max_ns": w.max_ns,
                }
                for w in self.wall
            ],
            "iterations": [
                {
                    "strategy": p.strategy,
                    "machine": p.machine,
                    "ranks": p.ranks,
                    "concurrent": p.concurrent,
                    "parent_time": p.parent_time,
                    "nests": {name: t for name, t in p.nests},
                    "nest_phase_time": p.nest_phase_time,
                    "integration_time": p.integration_time,
                    "io_time": p.io_time,
                    "steer_time": p.steer_time,
                    "total_time": p.total_time,
                    "mpi_wait": p.mpi_wait,
                }
                for p in self.iterations
            ],
            "metrics": self.metrics,
        }

    def render(self) -> str:
        """Human-readable per-phase/per-sibling breakdown."""
        lines: List[str] = []
        if self.iterations:
            lines.append("model time per iteration (simulated seconds)")
            header = (
                f"  {'strategy':<12} {'machine':<12} {'ranks':>6} "
                f"{'parent':>10} {'nest phase':>10} {'sync':>10} "
                f"{'I/O':>10} {'total':>10} {'MPI_Wait':>10}"
            )
            lines.append(header)
            for p in self.iterations:
                lines.append(
                    f"  {p.strategy:<12} {p.machine:<12} {p.ranks:>6d} "
                    f"{p.parent_time:>10.4f} {p.nest_phase_time:>10.4f} "
                    f"{p.sync_wait:>10.4f} {p.io_time:>10.4f} "
                    f"{p.total_time:>10.4f} {p.mpi_wait:>10.4f}"
                )
                for name, t in p.nests:
                    lines.append(f"      nest {name:<8} {t:>10.4f}")
        if self.wall:
            lines.append("wall time by span (ms)")
            lines.append(
                f"  {'span':<32} {'count':>7} {'total':>10} {'self':>10} "
                f"{'min':>10} {'max':>10}"
            )
            for w in self.wall:
                lines.append(
                    f"  {w.name:<32} {w.count:>7d} {w.total_ns / 1e6:>10.3f} "
                    f"{w.self_ns / 1e6:>10.3f} {w.min_ns / 1e6:>10.3f} "
                    f"{w.max_ns / 1e6:>10.3f}"
                )
        if self.metrics:
            lines.append("metrics")
            for name, snap in self.metrics.items():
                if snap["type"] == "histogram":
                    lines.append(
                        f"  {name:<40} count={snap['count']} sum={snap['sum']:.6g}"
                    )
                else:
                    lines.append(f"  {name:<40} {snap['value']}")
        return "\n".join(lines)


def build_report(
    records: Iterable[Mapping[str, Any]],
    metrics_snapshot: Optional[Dict[str, Dict[str, Any]]] = None,
) -> ProfileReport:
    """Aggregate one record stream into a :class:`ProfileReport`."""
    records = list(records)
    return ProfileReport(
        wall=aggregate_wall(records),
        iterations=phase_breakdown(records),
        metrics=metrics_snapshot or {},
    )


# ---------------------------------------------------------- chrome export
def chrome_trace(records: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Records as a Chrome trace-event JSON object.

    Wall spans become complete (``X``) events on pid 0, instant events
    ``i`` marks; each iteration's model-time phases are laid out
    sequentially (simulated seconds scaled to microseconds) on pid 1 so
    the simulated timeline is inspectable next to the real one.
    """
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "wall clock"}},
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "model time (simulated)"}},
    ]
    model_cursor: Dict[int, float] = defaultdict(float)
    model_track: Dict[int, int] = {}
    for r in records:
        kind = r.get("type")
        if kind == "span":
            events.append(
                {
                    "name": r["name"],
                    "cat": "wall",
                    "ph": "X",
                    "pid": 0,
                    "tid": r["tid"],
                    "ts": r["ts"] / 1000.0,
                    "dur": r["dur"] / 1000.0,
                    "args": {"id": r["id"], "parent": r["parent"],
                             **r.get("attrs", {})},
                }
            )
        elif kind == "event":
            events.append(
                {
                    "name": r["name"],
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": r["tid"],
                    "ts": r["ts"] / 1000.0,
                    "args": dict(r.get("attrs", {})),
                }
            )
        elif kind == "phase":
            group = r["parent"]
            tid = model_track.setdefault(group, len(model_track))
            start = model_cursor[group]
            dur_us = r["model_time"] * 1e6
            model_cursor[group] = start + dur_us
            events.append(
                {
                    "name": r["phase"],
                    "cat": "model",
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": start,
                    "dur": dur_us,
                    "args": {"model_time_s": r["model_time"],
                             **r.get("attrs", {})},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Iterable[Mapping[str, Any]], path) -> Path:
    """Write :func:`chrome_trace` output to *path*; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(records)) + "\n")
    return path
