"""Zero-dependency metrics registry: counters, gauges, histograms.

Every instrumented subsystem publishes named metrics into one process
global :class:`MetricsRegistry`:

* :class:`Counter` — a monotonically increasing integer/float total
  (``netsim.route_cache.hits``),
* :class:`Gauge` — a last-or-extreme value sample
  (``netsim.link_load.max_bytes``),
* :class:`Histogram` — counts over **fixed, ascending bucket boundaries**
  with an implicit ``+inf`` overflow bucket, plus running sum and count
  (``iosim.event_time_s``).

Naming convention: ``<subsystem>.<component>.<metric>``, lower-case,
dot-separated (see ``docs/observability.md``).

Metric objects are created once and then mutated in place;
:meth:`MetricsRegistry.reset` zeroes values but preserves object
identity, so module-level references held by hot paths (the netsim
engine keeps its counters in locals of the module) never go stale.

Merging
-------
:func:`merge_snapshots` combines two registry snapshots (e.g. from
sharded runs) and is **associative and commutative**: counters and
histogram buckets add, gauges take the extreme (max) value. That makes
fold order irrelevant when aggregating many shards.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from math import isfinite
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "merge_snapshots",
    "labelled",
    "parse_labelled",
    "current_rss_bytes",
    "peak_rss_bytes",
    "sample_rss",
]

Number = Union[int, float]


class Counter:
    """A monotonically increasing total.

    ``inc`` is atomic (a per-metric lock): ``value += amount`` is a
    read-modify-write that can drop updates when service request
    threads increment concurrently, and the concurrency-determinism
    suite asserts counters reconcile *exactly* at any thread count.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        """Add *amount* (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount!r}")
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A sampled value; ``set`` overwrites, ``set_max`` keeps the extreme."""

    __slots__ = ("name", "value", "updates", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self.updates = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value
            self.updates += 1

    def set_max(self, value: Number) -> None:
        """Record *value* only if it exceeds everything seen so far."""
        with self._lock:
            if self.updates == 0 or value > self.value:
                self.value = value
            self.updates += 1

    def reset(self) -> None:
        with self._lock:
            self.value = 0
            self.updates = 0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value, "updates": self.updates}


class Histogram:
    """Counts over fixed ascending bucket boundaries.

    Bucket *i* (for ``i < len(bounds)``) counts observations with
    ``value <= bounds[i]`` and greater than the previous boundary —
    boundary-exact values land in the bucket they bound (Prometheus
    ``le`` semantics). The final bucket is the implicit ``+inf``
    overflow: everything above ``bounds[-1]``.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "_lock")

    def __init__(self, name: str, bounds: Sequence[Number]) -> None:
        if not bounds:
            raise ValueError(f"histogram {name}: no bucket boundaries")
        clean = tuple(float(b) for b in bounds)
        if any(not isfinite(b) for b in clean):
            raise ValueError(f"histogram {name}: boundaries must be finite")
        if any(a >= b for a, b in zip(clean, clean[1:])):
            raise ValueError(
                f"histogram {name}: boundaries must be strictly ascending"
            )
        self.name = name
        self.bounds = clean
        self.counts: List[int] = [0] * (len(clean) + 1)
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.bounds) + 1)
            self.count = 0
            self.sum = 0.0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "type": "histogram",
                "bounds": list(self.bounds),
                "counts": list(self.counts),
                "count": self.count,
                "sum": self.sum,
            }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name -> metric map with get-or-create registration."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _register(self, name: str, kind: type, *args) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not kind:
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, requested {kind.__name__}"
                    )
                return existing
            metric = kind(name, *args)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        return self._register(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._register(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str, bounds: Sequence[Number]) -> Histogram:
        metric = self._register(name, Histogram, bounds)
        assert isinstance(metric, Histogram)
        if metric.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with boundaries "
                f"{metric.bounds}, requested {tuple(bounds)}"
            )
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def snapshot(self, prefix: str = "") -> Dict[str, Dict[str, Any]]:
        """JSON-able view of every metric (optionally name-filtered)."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
            if name.startswith(prefix)
        }

    def reset(self, prefix: str = "") -> None:
        """Zero matching metrics in place (object identity preserved)."""
        for name, metric in self._metrics.items():
            if name.startswith(prefix):
                metric.reset()


def merge_snapshots(
    a: Dict[str, Dict[str, Any]], b: Dict[str, Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Associatively combine two registry snapshots.

    Counters add; gauges keep the max value and add update counts;
    histograms add bucket counts, totals, and sums (boundaries must
    match). Metrics present in only one snapshot pass through.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for name in sorted(set(a) | set(b)):
        if name not in a:
            merged[name] = dict(b[name])
            continue
        if name not in b:
            merged[name] = dict(a[name])
            continue
        left, right = a[name], b[name]
        if left["type"] != right["type"]:
            raise TypeError(
                f"metric {name!r}: cannot merge {left['type']} with {right['type']}"
            )
        if left["type"] == "counter":
            merged[name] = {"type": "counter", "value": left["value"] + right["value"]}
        elif left["type"] == "gauge":
            merged[name] = {
                "type": "gauge",
                "value": max(left["value"], right["value"]),
                "updates": left["updates"] + right["updates"],
            }
        else:
            if left["bounds"] != right["bounds"]:
                raise ValueError(f"histogram {name!r}: boundary mismatch")
            merged[name] = {
                "type": "histogram",
                "bounds": list(left["bounds"]),
                "counts": [x + y for x, y in zip(left["counts"], right["counts"])],
                "count": left["count"] + right["count"],
                "sum": left["sum"] + right["sum"],
            }
    return merged


# ----------------------------------------------------------------------
# Labelled metric names (Prometheus-style, canonical label order)
# ----------------------------------------------------------------------
_LABEL_FORBIDDEN = set('{}",\n\\')


def labelled(name: str, **labels: Union[str, int]) -> str:
    """The canonical labelled form of a metric name.

    ``labelled("service.shard.up", shard="shard-3")`` is
    ``'service.shard.up{shard="shard-3"}'`` — Prometheus exposition
    syntax with labels **sorted by key**, so the same (name, labels)
    pair always produces the same registry entry regardless of call
    site. The sharded router uses this for its per-shard gauges and
    counters; :func:`merge_snapshots` then folds identically-labelled
    series across snapshots and keeps differently-labelled series
    apart, which is exactly what per-shard aggregation needs.

    Label values may be strings or ints; characters that would break
    the exposition syntax (braces, quotes, commas, newlines,
    backslashes) are rejected rather than escaped.
    """
    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        if not key.isidentifier():
            raise ValueError(f"label name {key!r} is not an identifier")
        if _LABEL_FORBIDDEN & set(value):
            raise ValueError(
                f"label value {value!r} for {key!r} contains forbidden "
                "characters ({} \" , newline or backslash)"
            )
        parts.append(f'{key}="{value}"')
    return f"{name}{{{','.join(parts)}}}"


def parse_labelled(full_name: str) -> Tuple[str, Dict[str, str]]:
    """Split a :func:`labelled` name back into ``(base, labels)``.

    The inverse used by aggregators that group per-shard series by
    base name. Unlabelled names return ``(name, {})``.
    """
    if not full_name.endswith("}") or "{" not in full_name:
        return full_name, {}
    base, _, inner = full_name[:-1].partition("{")
    labels: Dict[str, str] = {}
    for pair in inner.split(","):
        key, _, value = pair.partition("=")
        labels[key] = value.strip('"')
    return base, labels


#: The process-global registry every subsystem publishes into.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The global metrics registry."""
    return _REGISTRY


def counter(name: str) -> Counter:
    """Get or create a counter in the global registry."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get or create a gauge in the global registry."""
    return _REGISTRY.gauge(name)


def histogram(name: str, bounds: Sequence[Number]) -> Histogram:
    """Get or create a histogram in the global registry."""
    return _REGISTRY.histogram(name, bounds)


# ----------------------------------------------------------------------
# Process memory (stdlib only: /proc + resource)
# ----------------------------------------------------------------------
def current_rss_bytes() -> int:
    """The process's current resident set size, in bytes.

    Read from ``/proc/self/status`` (``VmRSS``); returns 0 on platforms
    without procfs — callers treat 0 as "unavailable", never as a
    measurement.
    """
    try:
        with open("/proc/self/status", "rb") as fh:
            for line in fh:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1]) * 1024  # value is in kB
    except OSError:
        pass
    return 0


def peak_rss_bytes() -> int:
    """The process's lifetime peak resident set size, in bytes.

    From ``resource.getrusage`` — ``ru_maxrss`` is kilobytes on Linux,
    bytes on macOS. Returns 0 where the resource module is unavailable.
    """
    try:
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return peak if sys.platform == "darwin" else peak * 1024
    except (ImportError, OSError):  # pragma: no cover - non-POSIX
        return 0


_last_rss_sample: float = 0.0
_last_rss_values: Optional[Dict[str, int]] = None


def sample_rss(throttle_s: float = 0.0) -> Optional[Dict[str, int]]:
    """Sample process RSS into the ``proc.rss.*`` gauges.

    ``proc.rss.current_bytes`` is a plain sample (last wins);
    ``proc.rss.peak_bytes`` keeps the extreme, so after a run it reports
    the high-water mark across every sampling point — the number the
    strong-scaling benchmark asserts against its memory budget.
    ``proc.*`` metrics are process-level, not task-level: the sweep
    pool's per-task metric capture excludes them (they could never be
    byte-identical across worker counts), so sampling is safe anywhere.

    A sample costs a procfs read (~tens of µs), which matters on hot
    traced paths: *throttle_s* > 0 returns ``None`` without sampling
    when the last sample is newer than that, so callers can skip their
    own per-sample work (e.g. trace events) too. RSS moves on
    allocation timescales, so a throttled gauge loses nothing the peak
    semantics need.
    """
    global _last_rss_sample, _last_rss_values
    if throttle_s > 0.0 and _last_rss_values is not None:
        if time.monotonic() - _last_rss_sample < throttle_s:
            return None
    current = current_rss_bytes()
    peak = max(peak_rss_bytes(), current)
    _REGISTRY.gauge("proc.rss.current_bytes").set(current)
    _REGISTRY.gauge("proc.rss.peak_bytes").set_max(peak)
    _last_rss_sample = time.monotonic()
    _last_rss_values = {"current": current, "peak": peak}
    return _last_rss_values
