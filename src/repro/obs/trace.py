"""Zero-dependency structured tracer.

Spans (``with tracer.span("halo_exchange")``) measure *wall-clock* time
with a monotonic nanosecond clock and carry nesting information (span id,
parent id, depth); instant events and model-time *phase* samples ride on
the same stream. Every record is a plain dict, emitted in completion
order to a pluggable sink — an in-memory :class:`TraceBuffer` or an
append-only JSONL file via :class:`JsonlSink`.

Overhead policy
---------------
Tracing is **off by default** and the disabled path allocates nothing:
``Tracer.span`` returns the shared :data:`NULL_SPAN` singleton and
``event``/``phase`` return immediately. Call sites that must build an
attribute dict guard it behind ``tracer.enabled`` so a disabled tracer
costs one attribute read per call. Record emission happens on span
*exit*, so the timed region pays only two clock reads and two list
operations.

Concurrency
-----------
Span stacks are thread-local (nesting is per thread), span ids come from
a shared atomic counter, and sink writes are serialised by a lock, so
threads can trace concurrently into one sink.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from itertools import count
from typing import Any, Callable, Dict, IO, Iterator, List, Optional

__all__ = [
    "NULL_SPAN",
    "TraceBuffer",
    "JsonlSink",
    "Tracer",
    "tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing",
    "read_jsonl",
]


class _NullSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton no-op span: identity-comparable in tests, never allocated
#: per call.
NULL_SPAN = _NullSpan()


class TraceBuffer:
    """In-memory sink: record dicts in completion order."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def __call__(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        del self.records[:]


class JsonlSink:
    """Append-only JSONL sink over an open text file handle.

    One record per line, compact separators; flushed per record so a
    crash mid-run leaves every completed span on disk (the point of an
    append-only trace).
    """

    __slots__ = ("_fh",)

    def __init__(self, fh: IO[str]) -> None:
        self._fh = fh

    def __call__(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()


def read_jsonl(path) -> List[Dict[str, Any]]:
    """Load a JSONL trace file back into record dicts."""
    records: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class _Span:
    """A live span; emits its record on exit."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "depth", "t0")

    def __init__(self, tr: "Tracer", name: str, attrs: Optional[Dict[str, Any]]):
        self._tracer = tr
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        tr = self._tracer
        stack = tr._stack()
        self.parent_id = stack[-1].span_id if stack else 0
        self.depth = len(stack)
        self.span_id = tr._new_id()
        stack.append(self)
        self.t0 = tr._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = self._tracer._clock()
        self._tracer._stack().pop()
        record: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "tid": threading.get_ident(),
            "ts": self.t0,
            "dur": t1 - self.t0,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = exc_type.__name__
        self._tracer._emit(record)
        return False


class Tracer:
    """A structured tracer bound to one sink and one monotonic clock.

    Parameters
    ----------
    sink:
        Callable receiving each record dict (default: a fresh
        :class:`TraceBuffer`).
    clock:
        Monotonic nanosecond clock (default ``time.perf_counter_ns``);
        injectable for deterministic tests.
    """

    def __init__(
        self,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
        clock: Callable[[], int] = time.perf_counter_ns,
    ):
        # Explicit None checks: an *empty* TraceBuffer is falsy (__len__).
        self._sink: Callable[[Dict[str, Any]], None] = (
            TraceBuffer() if sink is None else sink
        )
        self._clock = clock
        self._ids = count(1)
        self._local = threading.local()
        self._emit_lock = threading.Lock()
        self.enabled = False

    # ------------------------------------------------------------ internals
    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _new_id(self) -> int:
        # ``next`` on itertools.count is atomic under the GIL.
        return next(self._ids)

    def _emit(self, record: Dict[str, Any]) -> None:
        with self._emit_lock:
            self._sink(record)

    # ------------------------------------------------------------- recording
    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        """A wall-clock span context manager (no-op singleton when disabled).

        *attrs* is a plain dict, not ``**kwargs``: the disabled fast path
        must not build a dict per call. Sites with attributes should
        guard their dict literal behind ``tracer.enabled``.
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        """An instant event at the current nesting position."""
        if not self.enabled:
            return
        stack = self._stack()
        record: Dict[str, Any] = {
            "type": "event",
            "name": name,
            "id": self._new_id(),
            "parent": stack[-1].span_id if stack else 0,
            "depth": len(stack),
            "tid": threading.get_ident(),
            "ts": self._clock(),
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def phase(
        self, phase: str, model_time: float, attrs: Optional[Dict[str, Any]] = None
    ) -> None:
        """A model-time phase sample (simulated seconds, not wall time).

        Phase records are what the profile report aggregates into the
        paper-style per-phase/per-sibling breakdown; ``parent`` links the
        sample to the enclosing span (e.g. one ``simulate_iteration``).
        """
        if not self.enabled:
            return
        stack = self._stack()
        record: Dict[str, Any] = {
            "type": "phase",
            "phase": phase,
            "model_time": float(model_time),
            "id": self._new_id(),
            "parent": stack[-1].span_id if stack else 0,
            "depth": len(stack),
            "tid": threading.get_ident(),
            "ts": self._clock(),
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    # ------------------------------------------------------------- plumbing
    def current_depth(self) -> int:
        """Nesting depth of the calling thread (0 outside any span)."""
        return len(self._stack())

    def configure(
        self, sink: Optional[Callable[[Dict[str, Any]], None]] = None
    ) -> None:
        """Swap the sink (a fresh buffer when *sink* is None)."""
        self._sink = TraceBuffer() if sink is None else sink


#: The process-global tracer every instrumented subsystem publishes to.
#: Reconfigured in place so module-level references stay valid.
_TRACER = Tracer()


def tracer() -> Tracer:
    """The global tracer (disabled until :func:`enable_tracing`)."""
    return _TRACER


def enable_tracing(
    sink: Optional[Callable[[Dict[str, Any]], None]] = None
) -> Tracer:
    """Point the global tracer at *sink* and switch it on."""
    _TRACER.configure(sink)
    _TRACER.enabled = True
    return _TRACER


def disable_tracing() -> None:
    """Switch the global tracer off (its sink is left in place)."""
    _TRACER.enabled = False


@contextmanager
def tracing(
    sink: Optional[Callable[[Dict[str, Any]], None]] = None
) -> Iterator[Any]:
    """Enable the global tracer for a ``with`` block.

    Yields the sink (a fresh :class:`TraceBuffer` when none is given) and
    restores the previous sink and enabled state on exit.
    """
    previous_sink = _TRACER._sink
    previous_enabled = _TRACER.enabled
    active = TraceBuffer() if sink is None else sink
    enable_tracing(active)
    try:
        yield active
    finally:
        _TRACER.enabled = previous_enabled
        _TRACER._sink = previous_sink
