"""Observability: structured tracing, metrics, and per-phase profiling.

The reproduction's argument rests on attributing time to phases —
compute vs. halo communication vs. sync waits vs. I/O — so the
simulation stack publishes into this zero-dependency subsystem:

* :mod:`repro.obs.trace` — a structured tracer: wall-clock spans with
  nesting, instant events, and model-time *phase* samples, streamed as
  append-only JSONL; a shared no-op singleton makes the disabled path
  allocation-free.
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges, and fixed-boundary histograms (``netsim.route_cache.hits``,
  ``iosim.event_time_s``, ...), with associative snapshot merging.
* :mod:`repro.obs.report` — aggregates one trace into a wall profile
  plus a per-phase/per-sibling model-time breakdown, and exports Chrome
  ``chrome://tracing`` trace-event files.

``repro trace <scenario>`` and the ``--trace PATH`` flag on the other
CLI commands drive all three; see ``docs/observability.md``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    labelled,
    merge_snapshots,
    parse_labelled,
    registry,
)
from repro.obs.report import (
    IterationProfile,
    ProfileReport,
    WallAggregate,
    aggregate_wall,
    build_report,
    chrome_trace,
    phase_breakdown,
    reconcile,
    write_chrome_trace,
)
from repro.obs.trace import (
    NULL_SPAN,
    JsonlSink,
    TraceBuffer,
    Tracer,
    disable_tracing,
    enable_tracing,
    read_jsonl,
    tracer,
    tracing,
)

__all__ = [
    "NULL_SPAN",
    "JsonlSink",
    "TraceBuffer",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "read_jsonl",
    "tracer",
    "tracing",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "labelled",
    "merge_snapshots",
    "parse_labelled",
    "registry",
    "IterationProfile",
    "ProfileReport",
    "WallAggregate",
    "aggregate_wall",
    "build_report",
    "chrome_trace",
    "phase_breakdown",
    "reconcile",
    "write_chrome_trace",
    "TraceSession",
]


class _Tee:
    """Fan one record stream out to several sinks."""

    __slots__ = ("_sinks",)

    def __init__(self, *sinks) -> None:
        self._sinks = sinks

    def __call__(self, record: Dict[str, Any]) -> None:
        for sink in self._sinks:
            sink(record)


class TraceSession:
    """Enable global tracing to a JSONL file for a ``with`` block.

    Records stream to *path* as they complete (and to an in-memory
    buffer); on exit the tracer is restored and a Chrome trace-event
    export is written next to the JSONL file (``foo.jsonl`` ->
    ``foo.chrome.json``, any other name gets ``.chrome.json`` appended).
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        if self.path.suffix == ".jsonl":
            self.chrome_path = self.path.with_suffix(".chrome.json")
        else:
            self.chrome_path = Path(str(self.path) + ".chrome.json")
        self.buffer = TraceBuffer()
        self._fh = None
        self._prev_enabled = False
        self._prev_sink = None

    @property
    def records(self) -> List[Dict[str, Any]]:
        """Records captured so far, in completion order."""
        return self.buffer.records

    def __enter__(self) -> "TraceSession":
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w")
        tr = tracer()
        self._prev_enabled = tr.enabled
        self._prev_sink = tr._sink
        enable_tracing(_Tee(JsonlSink(self._fh), self.buffer))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tr = tracer()
        tr.enabled = self._prev_enabled
        tr._sink = self._prev_sink
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        write_chrome_trace(self.buffer.records, self.chrome_path)
        return False
