#!/usr/bin/env python
"""Drive the whole pipeline from a WRF-style namelist.

Parses a ``namelist.input``-style configuration (the format real WRF
runs use), fits the performance model from 13 profiling runs, plans both
strategies, and prints the schedule — the workflow an operational user
of this library would follow.

Run: ``python examples/namelist_run.py``
"""

from repro import BLUE_GENE_P, ParallelSiblingsStrategy, SequentialStrategy, simulate_iteration
from repro.analysis.experiments.common import fitted_model, grid_for
from repro.wrf.namelist import domains_from_namelist, parse_namelist

NAMELIST = """
! Pacific typhoon-season run with three regions of interest.
&domains
 max_dom           = 4,
 e_we              = 287, 415, 313, 232,
 e_sn              = 308, 445, 337, 256,
 dx                = 24000,
 parent_id         = 0, 1, 1, 1,
 i_parent_start    = 1, 11, 161, 11,
 j_parent_start    = 1, 11, 161, 161,
 parent_grid_ratio = 1, 3, 3, 3,
/
&time_control
 history_interval  = 10,      ! minutes — high-frequency output
 io_form_history   = 11,      ! pnetcdf
/
"""

specs = domains_from_namelist(parse_namelist(NAMELIST))
parent, *nests = specs
print(f"parsed {len(specs)} domains from namelist:")
for s in specs:
    role = "parent" if not s.is_nest else f"nest of {s.parent}"
    print(f"  {s.name}: {s.nx}x{s.ny} @ {s.dx_km:g} km ({role})")
print()

RANKS = 4096
grid = grid_for(RANKS)
model = fitted_model(BLUE_GENE_P)
ratios = model.predict_ratios(nests)
print("predicted relative execution times:",
      ", ".join(f"{s.name}={r:.3f}" for s, r in zip(nests, ratios)))

par_plan = ParallelSiblingsStrategy(model).plan(grid, parent, nests)
print()
print(par_plan.describe())
print()

seq = simulate_iteration(SequentialStrategy().plan(grid, parent, nests), BLUE_GENE_P)
par = simulate_iteration(par_plan, BLUE_GENE_P)
gain = 100 * (1 - par.integration_time / seq.integration_time)
print(f"on {RANKS} BG/P cores: {seq.integration_time:.2f} -> "
      f"{par.integration_time:.2f} s/iteration ({gain:.1f}% improvement)")
