#!/usr/bin/env python
"""Topology-mapping study on a Blue Gene/L rack.

Places the Table 2 four-sibling configuration under every available
mapping and reports iteration time, average torus hops, MPI_Wait, and
the per-link congestion the network simulator sees — the Sec 3.3 / Sec
4.4 story in one script.

Run: ``python examples/mapping_study.py``
"""

from repro import (
    BLUE_GENE_L,
    MultiLevelMapping,
    ObliviousMapping,
    ParallelSiblingsStrategy,
    PartitionMapping,
    ProcessGrid,
    SequentialStrategy,
    TxyzMapping,
    simulate_iteration,
)
from repro.analysis.tables import Table
from repro.workloads.paper_configs import table2_domains

config = table2_domains()
grid = ProcessGrid(32, 32)
siblings = list(config.siblings)

seq_plan = SequentialStrategy().plan(grid, config.parent, siblings)
par_plan = ParallelSiblingsStrategy().plan(
    grid, config.parent, siblings, ratios=[s.points for s in siblings]
)

table = Table(
    ["schedule", "mapping", "s/iteration", "avg hops", "MPI_Wait (s/rank)"],
    title="Table 2 configuration, 1024 BG/L cores (VN mode)",
)

default = simulate_iteration(seq_plan, BLUE_GENE_L)
table.add_row(["sequential", "XYZT (default)", default.integration_time,
               default.average_hops, default.mpi_wait])

for mapping in (ObliviousMapping(), TxyzMapping(), PartitionMapping(), MultiLevelMapping()):
    rep = simulate_iteration(par_plan, BLUE_GENE_L, mapping=mapping)
    table.add_row(["parallel", mapping.name, rep.integration_time,
                   rep.average_hops, rep.mpi_wait])

print(table.render())
print()

# Show where each sibling landed on the torus under the multi-level map.
from repro.core.mapping.base import SlotSpace

space = SlotSpace(BLUE_GENE_L.torus_for_ranks(1024), 2)
placement = MultiLevelMapping().place(grid, space, list(par_plan.rects))
print("multi-level placement footprints (torus node bounding boxes):")
for assignment in par_plan.assignments:
    nodes = [placement.node_of(r) for r in grid.ranks_in(assignment.rect)]
    lo = tuple(min(n[i] for n in nodes) for i in range(3))
    hi = tuple(max(n[i] for n in nodes) for i in range(3))
    print(f"  {assignment.domain.name} ({assignment.rect.width}x"
          f"{assignment.rect.height} ranks): nodes {lo} .. {hi}")
