#!/usr/bin/env python
"""Steered nested simulation: nests that follow their storms.

Implements the paper's closing future-work item ("simultaneously steer
these multiple nested simulations"): as the two depressions drift, the
tracker relocates the nests over them, their fine state is re-spawned
from the parent, and the processor allocation is replanned.

Run: ``python examples/steered_typhoons.py``
"""

from repro import DomainSpec, NestedModel, ProcessGrid
from repro.steering import SteeredRun
from repro.wrf.fields import ModelState

parent = DomainSpec("d01", 96, 80, dx_km=24.0)
initial = ModelState.with_disturbances(96, 80, num_depressions=2,
                                       amplitude=1.2, seed=42)
# Nests deliberately start away from the lows — steering must find them.
nests = [
    DomainSpec("d02", 27, 27, 8.0, parent="d01", parent_start=(2, 2),
               refinement=3, level=1),
    DomainSpec("d03", 27, 27, 8.0, parent="d01", parent_start=(80, 65),
               refinement=3, level=1),
]
model = NestedModel(parent, nests, initial_state=initial)
run = SteeredRun(model, ProcessGrid(16, 16), retrack_interval=4)

print("initial nest footprints:",
      {n: model.nests[n].spec.parent_start for n in model.sibling_names})
run.run(16)

for event in run.events:
    feats = ", ".join(f"({f.x},{f.y}) depth {f.depth:.2f}" for f in event.features)
    moves = ", ".join(
        f"{m.name} {m.old_start}->{m.new_start}" for m in event.moves if m.moved
    ) or "none"
    print(f"iter {event.iteration:3d}: depressions [{feats}] | moved: {moves}"
          f"{' | replanned' if event.replanned else ''}")

print("final nest footprints:  ",
      {n: model.nests[n].spec.parent_start for n in model.sibling_names})
print()
print("current allocation after steering:")
print(run.plan.describe())
