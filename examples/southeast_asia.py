#!/usr/bin/env python
"""South East Asia business-centre forecasts (paper Sec 4.1.1).

Eight nested configurations at 4.5 km / 1.5 km over SE-Asian business
centres, three of them with a second-level 0.5 km urban core. For each,
compare the default sequential execution against the paper's parallel
strategy (with the fitted Delaunay performance model driving allocation)
on 4096 Blue Gene/P cores.

Run: ``python examples/southeast_asia.py``
"""

from repro.analysis.experiments.common import compare_strategies
from repro.analysis.tables import Table
from repro.iosim import IoModel
from repro.topology import BLUE_GENE_P
from repro.workloads.regions import southeast_asia_configurations

RANKS = 4096

table = Table(
    ["config", "#nests", "levels", "sequential (s)", "parallel (s)",
     "improvement %", "wait improvement %"],
    title=f"SE Asia configurations on {RANKS} BG/P cores (PnetCDF output)",
)

io = IoModel("pnetcdf")
for config in southeast_asia_configurations():
    cmp = compare_strategies(config, RANKS, BLUE_GENE_P, io_model=io)
    levels = max(s.level for s in config.siblings)
    table.add_row([
        config.name,
        config.num_siblings,
        levels,
        cmp.sequential.total_time,
        cmp.parallel.total_time,
        cmp.improvement_with_io,
        cmp.wait_improvement,
    ])

print(table.render())
print()
print("Second-level nests (configs seasia5-7) run r^2 = 9 fine steps per")
print("outer iteration, so their configurations weigh heavier per point —")
print("the allocator compensates through the predicted time ratios.")
