#!/usr/bin/env python
"""Beyond weather: the paper's Sec 5 generality claim, executed.

"The algorithms developed in this work can improve the throughput of
applications with multiple simultaneous simulations within a main
simulation, for example crack propagation in a solid using LAMMPS ...
[or] nested high-resolution coastal circulation modeling using ROMS."

This script runs the identical predict/allocate/map/simulate pipeline on
both analogies with their own cost structures.

Run: ``python examples/beyond_weather.py``
"""

from repro.analysis.experiments.common import grid_for
from repro.analysis.tables import Table
from repro.core.mapping.multilevel import MultiLevelMapping
from repro.core.scheduler.strategies import (
    ParallelSiblingsStrategy,
    SequentialStrategy,
)
from repro.perfsim.simulate import simulate_iteration
from repro.topology import BLUE_GENE_P
from repro.workloads.scenarios import (
    coastal_circulation_configuration,
    coastal_circulation_workload,
    crack_propagation_configuration,
    crack_propagation_workload,
)

table = Table(
    ["application", "regions", "ranks", "sequential (s)", "parallel (s)",
     "improvement %"],
    title="Sec 5 — the same divide-and-conquer machinery beyond weather",
)

for config, workload, ranks in (
    (crack_propagation_configuration(), crack_propagation_workload(), 4096),
    (coastal_circulation_configuration(), coastal_circulation_workload(), 1024),
):
    grid = grid_for(ranks)
    siblings = list(config.siblings)
    seq = simulate_iteration(
        SequentialStrategy().plan(grid, config.parent, siblings),
        BLUE_GENE_P, workload=workload,
    )
    par = simulate_iteration(
        ParallelSiblingsStrategy().plan(
            grid, config.parent, siblings,
            ratios=[s.points * s.steps_per_parent_step for s in siblings],
        ),
        BLUE_GENE_P, workload=workload, mapping=MultiLevelMapping(),
    )
    table.add_row([
        config.name, len(siblings), ranks,
        seq.integration_time, par.integration_time,
        100 * (1 - par.integration_time / seq.integration_time),
    ])

print(table.render())
print()
print("Crack regions sub-cycle 10 MD steps per continuum step, so the")
print("sequential strategy pays the per-step fixed cost 10x per crack —")
print("the same structural waste the paper identified in nested WRF.")
