#!/usr/bin/env python
"""Pacific typhoon season: numerics + scheduling for multiple depressions.

Recreates the paper's motivating scenario (Fig 1): two depressions over
the Pacific, each tracked by a high-resolution nest. This example runs
the *actual* nested shallow-water model to locate the depressions and
verify that sibling execution order does not change the forecast, then
prices the scheduling strategies at Blue Gene scale.

Run: ``python examples/pacific_typhoons.py``
"""

import numpy as np

from repro import (
    BLUE_GENE_L,
    DomainSpec,
    NestedModel,
    ParallelSiblingsStrategy,
    ProcessGrid,
    SequentialStrategy,
    simulate_iteration,
)
from repro.wrf.fields import ModelState
from repro.wrf.physics import PhysicsParams

# ----------------------------------------------------------------------
# 1. A (scaled-down) Pacific parent with two seeded depressions.
#    The numerical run uses a small grid so this example finishes in
#    seconds; the *scheduling* study below uses the paper's full sizes.
# ----------------------------------------------------------------------
parent = DomainSpec("d01", nx=96, ny=80, dx_km=24.0)
initial = ModelState.with_disturbances(
    parent.nx, parent.ny, num_depressions=2, amplitude=0.8, seed=2010
)

# Locate the two lows to place the nests over them (what an operational
# system's vortex tracker would do).
h = initial.h
flat = np.argsort(h, axis=None)
lows = []
for idx in flat:
    y, x = divmod(int(idx), parent.nx)
    if all(abs(x - lx) + abs(y - ly) > 20 for lx, ly in lows):
        lows.append((x, y))
    if len(lows) == 2:
        break
print(f"depression centres (parent grid): {lows}")

nests = []
for i, (cx, cy) in enumerate(lows):
    i0 = max(0, min(parent.nx - 11, cx - 5))
    j0 = max(0, min(parent.ny - 11, cy - 5))
    nests.append(DomainSpec(
        f"d{i + 2:02d}", nx=30, ny=30, dx_km=8.0, parent="d01",
        parent_start=(i0, j0), refinement=3, level=1,
    ))

# ----------------------------------------------------------------------
# 2. Run the nested model both ways round; forecasts must be identical —
#    the property that makes concurrent sibling execution legal.
# ----------------------------------------------------------------------
physics = PhysicsParams()
model_a = NestedModel(parent, nests, initial_state=initial, physics=physics)
model_b = NestedModel(parent, nests, initial_state=initial, physics=physics)
dt = min(model_a.stable_dt(), model_b.stable_dt())
order = [n.name for n in nests]
for _ in range(10):
    model_a.advance(dt, sibling_order=order)
    model_b.advance(dt, sibling_order=list(reversed(order)))
assert model_a.state.allclose(model_b.state), "sibling order changed the forecast!"
print(f"10 iterations, dt={dt:.0f} s: forecasts identical under both "
      "sibling orders (order-independence verified)")
print(f"parent mass drift: "
      f"{abs(model_a.total_mass() - initial.total_mass()) / initial.total_mass():.2e}")

# ----------------------------------------------------------------------
# 3. Scheduling at Blue Gene scale with the paper's full domain sizes.
# ----------------------------------------------------------------------
full_parent = DomainSpec("d01", nx=286, ny=307, dx_km=24.0)
full_nests = [
    DomainSpec("d02", nx=415, ny=445, dx_km=8.0, parent="d01",
               parent_start=(10, 10), refinement=3, level=1),
    DomainSpec("d03", nx=313, ny=337, dx_km=8.0, parent="d01",
               parent_start=(160, 160), refinement=3, level=1),
]
grid = ProcessGrid(32, 32)
seq = simulate_iteration(
    SequentialStrategy().plan(grid, full_parent, full_nests), BLUE_GENE_L)
par = simulate_iteration(
    ParallelSiblingsStrategy().plan(
        grid, full_parent, full_nests, ratios=[n.points for n in full_nests]),
    BLUE_GENE_L)

print()
print("scheduling the full-size configuration on 1024 BG/L cores:")
for s in seq.siblings:
    print(f"  sequential {s.name}: {s.step.total:.3f} s/step on {s.ranks} ranks")
for s in par.siblings:
    print(f"  parallel   {s.name}: {s.step.total:.3f} s/step on {s.ranks} ranks")
gain = 100 * (1 - par.integration_time / seq.integration_time)
print(f"iteration time {seq.integration_time:.2f} -> {par.integration_time:.2f} s "
      f"({gain:.1f}% improvement)")
