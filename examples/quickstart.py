#!/usr/bin/env python
"""Quickstart: schedule two nested regions of interest on Blue Gene/L.

The minimal end-to-end use of the library:

1. describe a parent domain and two sibling nests,
2. plan the default (sequential) and the paper's (parallel) schedules,
3. price both on the Blue Gene/L machine model,
4. print the improvement.

Run: ``python examples/quickstart.py``
"""

from repro import (
    BLUE_GENE_L,
    DomainSpec,
    MultiLevelMapping,
    ParallelSiblingsStrategy,
    ProcessGrid,
    SequentialStrategy,
    simulate_iteration,
)

# 1. The domains: a coarse parent and two high-resolution nests tracking
#    two different weather systems (sizes in grid points).
parent = DomainSpec("d01", nx=286, ny=307, dx_km=24.0)
nests = [
    DomainSpec("d02", nx=394, ny=418, dx_km=8.0, parent="d01",
               parent_start=(10, 10), refinement=3, level=1),
    DomainSpec("d03", nx=313, ny=337, dx_km=8.0, parent="d01",
               parent_start=(160, 160), refinement=3, level=1),
]

# 2. 1024 MPI ranks as a 32x32 virtual process grid (a BG/L rack in VN mode).
grid = ProcessGrid(32, 32)

sequential = SequentialStrategy().plan(grid, parent, nests)
parallel = ParallelSiblingsStrategy().plan(
    grid, parent, nests,
    # Relative execution-time ratios; normally predicted by the fitted
    # PerformanceModel — point counts are a reasonable first guess.
    ratios=[n.points for n in nests],
)
print(parallel.describe())
print()

# 3. Price one outer iteration of each plan.
default = simulate_iteration(sequential, BLUE_GENE_L)
oblivious = simulate_iteration(parallel, BLUE_GENE_L)
topo_aware = simulate_iteration(parallel, BLUE_GENE_L, mapping=MultiLevelMapping())

# 4. Report.
print(f"default sequential   : {default.integration_time:.3f} s/iteration")
print(f"parallel (oblivious) : {oblivious.integration_time:.3f} s/iteration "
      f"({100 * (1 - oblivious.integration_time / default.integration_time):.1f}% faster)")
print(f"parallel (multilevel): {topo_aware.integration_time:.3f} s/iteration "
      f"({100 * (1 - topo_aware.integration_time / default.integration_time):.1f}% faster)")
print(f"MPI_Wait             : {default.mpi_wait:.3f} -> {topo_aware.mpi_wait:.3f} "
      f"s/rank/iteration "
      f"({100 * (1 - topo_aware.mpi_wait / default.mpi_wait):.1f}% less waiting)")
print(f"average torus hops   : {default.average_hops:.2f} -> {topo_aware.average_hops:.2f}")
