#!/usr/bin/env python
"""High-frequency output I/O study (paper Sec 4.5, Figs 13-14).

Simulates 10-minute history output with PnetCDF on Blue Gene/P from 512
to 8192 cores, for both strategies, and shows why parallel sibling
execution rescues I/O scalability: each sibling's file is written by its
own sub-communicator instead of all ranks.

Run: ``python examples/io_scaling.py``
"""

from repro.analysis.experiments import fig13_fig14_io_scaling

result = fig13_fig14_io_scaling(num_configs=4, ranks=(512, 1024, 2048, 4096))
print(result.render())
print()
seq_frac = result.io_fraction("sequential")
par_frac = result.io_fraction("parallel")
print(f"at {result.ranks[-1]} cores, I/O consumes "
      f"{100 * seq_frac[-1]:.0f}% of a sequential iteration but only "
      f"{100 * par_frac[-1]:.0f}% of a parallel one.")
